"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``schedule``   run one algorithm on a generated mesh, print metrics
``figures``    regenerate one or all paper figures (Fig 2a–3c, headline)
``mesh``       generate a mesh and report/save it
``partition``  partition a mesh into blocks, report cut/balance
``transport``  run the S_n transport solve in schedule order
``fuzz``       differential fuzzing of every registered scheduler
``bench``      time the heap/bucket/vector scheduling engines, write JSON
``trace``      run a traced grid and export a Perfetto-loadable timeline
``campaign``   resumable declarative sweeps over a sqlite result store
``cache``      inspect/clear the content-addressed instance build cache
``lint``       AST invariant linter (RPL rules) over python sources
``serve``      resident scheduling daemon (batching, admission control)
``request``    send schedule/status/metrics requests to a running daemon
``doctor``     health probe: orphan shm segments + corrupt cache entries

All commands take ``--seed`` and print deterministic output.  The CLI is
a thin veneer over the library — every command body is a few calls into
the public API, and the functions return exit codes so tests can drive
them without subprocesses.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis import gantt_text, summarize_schedule
from repro.comm import CommModel, estimate_wall_clock
from repro.core import block_assignment
from repro.experiments import paper
from repro.heuristics import algorithm_names, get_algorithm
from repro.mesh import MESH_GENERATORS, make_mesh, save_mesh
from repro.partition import balance, block_sizes, edge_cut, partition_mesh_blocks
from repro.sweeps import build_instance, directions_for_mesh
from repro.transport import Quadrature, TransportProblem, solve_with_schedule
from repro.util.errors import ReproError

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig2a": paper.fig2a,
    "fig2b": paper.fig2b,
    "fig2c": paper.fig2c,
    "fig3a": paper.fig3a,
    "fig3b": paper.fig3b,
    "fig3c": paper.fig3c,
    "headline": paper.headline_bounds,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel sweep scheduling on unstructured meshes (IPDPS 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--mesh", default="tetonly", choices=sorted(MESH_GENERATORS))
        p.add_argument("--cells", type=int, default=2000, help="target cell count")
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("schedule", help="schedule sweeps with one algorithm")
    common(p)
    p.add_argument("--algorithm", default="random_delay_priority",
                   choices=algorithm_names())
    p.add_argument("-k", "--directions", type=int, default=8)
    p.add_argument("-m", "--processors", type=int, default=16)
    p.add_argument("--block-size", type=int, default=1,
                   help="METIS-style block size (1 = per-cell assignment)")
    p.add_argument("--comm-cost", type=float, default=0.0,
                   help="per-message-round cost c for the wall-clock estimate")
    p.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")

    p = sub.add_parser("figures", help="regenerate paper figures")
    p.add_argument("which", nargs="?", default="all",
                   choices=["all"] + sorted(_FIGURES))
    p.add_argument("--cells", type=int, default=2000)
    p.add_argument("--workers", type=int, default=1,
                   help="processes per experiment grid (0 = one per CPU); "
                        "output is bit-identical for any value")
    p.add_argument("--chart", action="store_true",
                   help="also render each figure as an ASCII chart")
    p.add_argument("--trace", nargs="?", const="TRACE.json", default=None,
                   metavar="PATH",
                   help="record a runtime trace and write Chrome trace-event "
                        "JSON (default PATH: TRACE.json)")

    p = sub.add_parser("mesh", help="generate a mesh")
    common(p)
    p.add_argument("--out", default=None, help="save to this .npz path")

    p = sub.add_parser("partition", help="partition a mesh into blocks")
    common(p)
    p.add_argument("--block-size", type=int, default=64)

    p = sub.add_parser("transport", help="run an S_n transport solve")
    common(p)
    p.add_argument("-k", "--directions", type=int, default=8)
    p.add_argument("-m", "--processors", type=int, default=16)
    p.add_argument("--sigma-t", type=float, default=1.0)
    p.add_argument("--sigma-s", type=float, default=0.5)
    p.add_argument("--source", type=float, default=1.0)
    p.add_argument("--boundary", default="vacuum", choices=["vacuum", "white"])
    p.add_argument("--krylov", action="store_true",
                   help="GMRES acceleration (vacuum boundaries only)")

    p = sub.add_parser(
        "compare", help="seed-paired statistical comparison of two algorithms"
    )
    common(p)
    p.add_argument("algorithm_a", choices=algorithm_names())
    p.add_argument("algorithm_b", choices=algorithm_names())
    p.add_argument("-k", "--directions", type=int, default=8)
    p.add_argument("-m", "--processors", type=int, default=16)
    p.add_argument("--trials", type=int, default=10)

    p = sub.add_parser(
        "tournament", help="round-robin all (or chosen) algorithms with stats"
    )
    common(p)
    p.add_argument("algorithms", nargs="*", default=[],
                   help="registry names (default: the main contenders)")
    p.add_argument("-k", "--directions", type=int, default=8)
    p.add_argument("-m", "--processors", type=int, default=16)
    p.add_argument("--trials", type=int, default=8)

    p = sub.add_parser(
        "families", help="run the algorithms on non-geometric instance families"
    )
    p.add_argument("--size", type=int, default=128, help="cells per family")
    p.add_argument("-k", "--directions", type=int, default=8)
    p.add_argument("-m", "--processors", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing of every registered scheduler",
        description=(
            "Generate adversarial instances, run every registry algorithm "
            "on each, and check the invariant-oracle pack (feasibility, "
            "lower bounds, C1/C2 consistency, theory ratios).  Failures "
            "are shrunk and persisted to the corpus as reproducible JSON."
        ),
    )
    p.add_argument("--seeds", type=int, default=None,
                   help="number of fuzz cases (default 100 without a time budget)")
    p.add_argument("--time-budget", type=float, default=None,
                   help="stop generating after this many seconds")
    p.add_argument("--seed", type=int, default=0, help="campaign root seed")
    p.add_argument("--replay", action="store_true",
                   help="re-run the persisted corpus instead of fuzzing")
    p.add_argument("--corpus", default="corpus",
                   help="corpus directory (default ./corpus)")
    p.add_argument("--no-corpus", action="store_true",
                   help="do not persist failures")
    p.add_argument("--no-shrink", action="store_true",
                   help="persist failures without minimising them")
    p.add_argument("--algorithms", nargs="*", default=[],
                   choices=algorithm_names(), metavar="ALGO",
                   help="restrict to these registry algorithms")
    p.add_argument("--quiet", action="store_true",
                   help="only print the final summary")

    p = sub.add_parser(
        "bench",
        help="benchmark the heap/bucket/vector list-scheduling engines",
        description=(
            "Time all three list-scheduling engines on the benchmark families "
            "(large/standard mesh, chains, wide layers), cross-check that "
            "they produce identical schedules, and write a schema-"
            "versioned JSON report."
        ),
    )
    p.add_argument("--smoke", action="store_true",
                   help="tiny sizes for CI schema validation (seconds)")
    p.add_argument("--cells", type=int, default=None,
                   help="mesh cell count (default $REPRO_BENCH_CELLS or 2000)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timing repeats per engine (best-of; default 5, 1 in smoke)")
    p.add_argument("--grid-workers", type=int, nargs="*", default=None,
                   metavar="W",
                   help="worker counts for the grid family "
                        "(default 1 2 4, or 1 2 in smoke)")
    p.add_argument("--families", default=None, metavar="FAM[,FAM...]",
                   help="comma-separated case-family subset (e.g. "
                        "'chain,mesh_large'); writes a partial report "
                        "without the grid/construction sections")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None,
                   help="output JSON path (default BENCH_<schema>.json; '-' for stdout)")
    p.add_argument("--trace", nargs="?", const="TRACE.json", default=None,
                   metavar="PATH",
                   help="record a runtime trace of the benchmark and write "
                        "Chrome trace-event JSON (default PATH: TRACE.json)")

    p = sub.add_parser(
        "trace",
        help="run a traced workload and export a Perfetto-loadable trace",
        description=(
            "Enable the repro.obs tracer, run one experiment grid "
            "(optionally over a worker pool, whose spans are shipped back "
            "and merged into a single pid/stream-tagged timeline), and "
            "export the result as Chrome trace-event JSON (loadable in "
            "Perfetto / chrome://tracing), flat JSON, or a terminal "
            "summary.  See docs/observability.md."
        ),
    )
    p.add_argument("--cells", type=int, default=300, help="target cell count")
    p.add_argument("-k", "--directions", type=int, default=4)
    p.add_argument("--workers", type=int, default=2,
                   help="processes for the traced grid (0 = one per CPU)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="TRACE.json",
                   help="output path (default TRACE.json; '-' for stdout)")
    p.add_argument("--format", dest="fmt", default="chrome",
                   choices=["chrome", "flat", "summary"],
                   help="chrome trace-event JSON (default), flat JSON, or "
                        "a terminal top-N summary")
    p.add_argument("--top", type=int, default=15,
                   help="span names in the summary table (default 15)")

    p = sub.add_parser(
        "campaign",
        help="declarative, resumable experiment campaigns",
        description=(
            "Compile a TOML/JSON campaign spec to a content-hashed cell "
            "universe, execute only the cells without a committed result "
            "(checkpointing each into a sqlite store, so a killed run "
            "resumes where it stopped), and rebuild grid summaries "
            "purely from the store — byte-identical to a fresh "
            "run_grid.  See docs/campaigns.md."
        ),
    )
    p.add_argument("action", choices=["run", "status", "report"],
                   help="run/resume the campaign, show progress, or "
                        "rebuild the report from the store")
    p.add_argument("spec", help="campaign spec path (.toml or .json)")
    p.add_argument("--store", default=None,
                   help="sqlite result store path "
                        "(default: <spec>.campaign.sqlite)")
    p.add_argument("--workers", type=int, default=1,
                   help="processes per instance group (0 = one per CPU); "
                        "results are bit-identical for any value")
    p.add_argument("--limit", type=int, default=None,
                   help="run at most N pending cells this call (canonical "
                        "order); the rest stay pending, like a resume")
    p.add_argument("--out", default="-",
                   help="report output path (default '-' for stdout)")
    p.add_argument("--trace", nargs="?", const="TRACE.json", default=None,
                   metavar="PATH",
                   help="record a runtime trace of the run and write Chrome "
                        "trace-event JSON (default PATH: TRACE.json)")
    p.add_argument("--serve", default=None, metavar="ADDR",
                   help="execute cells through a running repro-serve daemon "
                        "at this address (socket path or tcp:HOST:PORT) "
                        "instead of building instances locally; results and "
                        "the report stay byte-identical")

    p = sub.add_parser(
        "serve",
        help="resident scheduling daemon over a unix socket",
        description=(
            "Start the scheduling-as-a-service daemon: instances are "
            "published once into shared memory (hydrating from the build "
            "cache when possible) and kept in a byte-budgeted LRU, "
            "compatible schedule requests are coalesced into grid chunks "
            "and dispatched to a resident spawn-context worker pool, and "
            "an admission controller bounds the pending queue, enforces "
            "per-request deadlines, and sheds publishes when the resident "
            "budget is pinned.  SIGTERM drains gracefully: in-flight "
            "requests finish, new ones are refused, and every shared "
            "segment is unlinked (repro doctor must then report zero "
            "orphans).  See docs/serving.md."
        ),
    )
    p.add_argument("--socket", default="repro-serve.sock",
                   help="unix socket path to listen on "
                        "(default ./repro-serve.sock)")
    p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                   help="listen on TCP instead of a unix socket")
    p.add_argument("--workers", type=int, default=2,
                   help="resident pool size (default 2)")
    p.add_argument("--max-pending", type=int, default=None,
                   help="admission bound on in-flight requests (default 128)")
    p.add_argument("--max-delay-ms", type=float, default=None,
                   help="batching coalescing window in ms (default 5)")
    p.add_argument("--max-batch", type=int, default=None,
                   help="max cells per coalesced chunk (default 64)")
    p.add_argument("--max-resident-mb", type=float, default=None,
                   help="resident instance byte budget in MiB (default 512)")
    p.add_argument("--trace", nargs="?", const="TRACE.json", default=None,
                   metavar="PATH",
                   help="enable tracing and write a merged Chrome trace "
                        "on drain (default PATH: TRACE.json)")

    p = sub.add_parser(
        "request",
        help="send one or more requests to a running repro-serve daemon",
        description=(
            "Client for the daemon: 'schedule' runs grid cells (with "
            "--count N, N seed-consecutive requests are pipelined on one "
            "connection so the daemon can coalesce them), 'publish' "
            "pre-publishes an instance into daemon shared memory, "
            "'status'/'metrics' print the daemon's JSON snapshots."
        ),
    )
    p.add_argument("kind", nargs="?", default="schedule",
                   choices=["schedule", "publish", "status", "metrics"])
    p.add_argument("--addr", default="repro-serve.sock",
                   help="daemon address: socket path or tcp:HOST:PORT")
    p.add_argument("--mesh", default="tetonly", choices=sorted(MESH_GENERATORS))
    p.add_argument("--cells", type=int, default=2000, help="target cell count")
    p.add_argument("--mesh-seed", type=int, default=0)
    p.add_argument("-k", "--directions", type=int, default=8)
    p.add_argument("--algorithm", default="random_delay_priority",
                   choices=algorithm_names())
    p.add_argument("-m", "--processors", type=int, default=16)
    p.add_argument("--block-size", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", default="auto")
    p.add_argument("--count", type=int, default=1,
                   help="pipeline this many schedule requests "
                        "(seeds seed..seed+count-1)")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="per-request deadline in seconds")
    p.add_argument("--block-sizes", type=int, nargs="*", default=None,
                   metavar="B", help="labellings to publish alongside "
                                     "(publish kind only)")

    p = sub.add_parser(
        "doctor",
        help="health probe: orphan shm segments + corrupt cache entries",
        description=(
            "Scan for resources a crashed or misbehaving run may have "
            "leaked: shared-memory segments still present in /dev/shm "
            "(repro.parallel.list_orphan_segments) and corrupt or "
            "stray-tmp build-cache entries "
            "(repro.cache.list_corrupt_entries).  Exits 1 if anything is "
            "found, 0 when clean — CI runs this after the serve drain."
        ),
    )
    p.add_argument("--dir", default=None,
                   help="cache directory (default $REPRO_CACHE_DIR)")

    p = sub.add_parser(
        "cache",
        help="inspect or clear the content-addressed build cache",
        description=(
            "Operate on the instance build cache (repro.cache): 'stats' "
            "prints counts/bytes and probes for corrupt or stray-tmp "
            "entries (exit 1 if any — the cache's analogue of the shm "
            "orphan-segment leak check), 'ls' lists entries with their "
            "content keys, 'clear' deletes everything.  The directory "
            "comes from --dir or $REPRO_CACHE_DIR."
        ),
    )
    p.add_argument("action", choices=["stats", "ls", "clear"],
                   help="show stats (+corruption probe), list entries, "
                        "or delete all entries")
    p.add_argument("--dir", default=None,
                   help="cache directory (default $REPRO_CACHE_DIR)")

    p = sub.add_parser(
        "lint",
        help="AST invariant linter for the scheduling/parallel planes",
        description=(
            "Run the project's static invariant rules (RPL001 determinism, "
            "RPL002 engine parity, RPL003 shm lifecycle, RPL004 dtype "
            "discipline, RPL005 hot-path hygiene, RPL006 obs discipline) "
            "over python sources.  "
            "With --deep, also builds a whole-program call graph and runs "
            "the interprocedural pack (RPL101 spawn safety, RPL102 shm "
            "pairing, RPL103 engine propagation, RPL104 span safety, "
            "RPL105 seed escape).  "
            "Exits 0 when clean, 1 with file:line diagnostics, 2 on usage "
            "errors (unknown rule, missing/unreadable path, no python "
            "files).  "
            "See docs/linting.md for the rule pack and the pragma syntax."
        ),
    )
    p.add_argument("paths", nargs="*", default=[],
                   help="files/directories to lint (default: src/repro)")
    p.add_argument("--format", dest="fmt", default="text",
                   choices=["text", "json", "github"],
                   help="text (default), json (machine-readable report "
                        "with pragma counts), or github (PR annotations)")
    p.add_argument("--rule", action="append", default=None, metavar="RPLxxx",
                   help="restrict to these rule codes (repeatable)")
    p.add_argument("--deep", action="store_true",
                   help="also build the call graph and run the "
                        "whole-program rules (RPL101+)")
    p.add_argument("--graph-cache", default=None, metavar="DIR",
                   help="cache the --deep call graph in DIR, keyed on a "
                        "source-tree hash (skips re-parsing when the tree "
                        "is unchanged)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the registered rules and exit")
    return parser


def _cmd_schedule(args) -> int:
    mesh = make_mesh(args.mesh, target_cells=args.cells, seed=args.seed)
    inst = build_instance(mesh, directions_for_mesh(mesh.dim, args.directions))
    algo = get_algorithm(args.algorithm)
    if args.block_size > 1:
        blocks = partition_mesh_blocks(
            mesh.n_cells, mesh.adjacency, args.block_size, seed=args.seed
        )
        assignment = block_assignment(blocks, args.processors, seed=args.seed)
        sched = algo(inst, args.processors, seed=args.seed, assignment=assignment)
    else:
        sched = algo(inst, args.processors, seed=args.seed)
    sched.validate()
    s = summarize_schedule(sched)
    print(f"mesh: {mesh.name} ({mesh.n_cells} cells), k={inst.k}, m={args.processors}")
    print(f"algorithm: {s.algorithm}")
    print(f"makespan: {s.makespan} (lower bound nk/m = {s.lower_bound}, "
          f"ratio {s.ratio:.3f})")
    print(f"C1 = {s.c1} ({s.c1_fraction:.1%} of DAG edges), C2 = {s.c2}, "
          f"idle = {s.idle_fraction:.1%}")
    if args.comm_cost > 0:
        est = estimate_wall_clock(sched, CommModel(c=args.comm_cost))
        print(f"wall-clock estimate (c={args.comm_cost}): {est.total:.1f} "
              f"({est.comm_fraction():.0%} communication)")
    if args.gantt:
        print()
        print(gantt_text(sched))
    return 0


def _write_trace(path: str) -> None:
    """Drain the obs buffers and write a Chrome trace to ``path``."""
    from repro import obs

    spans = obs.merge_spans([obs.drain_spans()])
    metrics = obs.drain_metrics()
    obs.write_chrome_trace(path, spans, metrics=metrics)
    pids = {s.pid for s in spans}
    print(f"wrote trace {path} ({len(spans)} spans from {len(pids)} pids)")


def _cmd_figures(args) -> int:
    if args.trace:
        from repro import obs

        obs.enable_tracing()
        obs.reset()
    names = sorted(_FIGURES) if args.which == "all" else [args.which]
    for name in names:
        rows, text = _FIGURES[name](target_cells=args.cells, workers=args.workers)
        print(text)
        if args.chart and rows and "series" in rows[0]:
            from repro.experiments import ascii_chart

            y = "ratio" if "ratio" in rows[0] else "makespan"
            print()
            print(ascii_chart(rows, x="m", y=y, group_by="series",
                              title=f"{name} — {y} vs m (shape view)"))
        print()
    if args.trace:
        _write_trace(args.trace)
    return 0


def _cmd_mesh(args) -> int:
    mesh = make_mesh(args.mesh, target_cells=args.cells, seed=args.seed)
    print(f"{mesh.name}: {mesh.n_cells} cells, {mesh.n_faces} interior faces, "
          f"dim {mesh.dim}")
    if mesh.cell_volumes is not None:
        print(f"total volume: {mesh.cell_volumes.sum():.4f}, "
              f"boundary faces: {mesh.boundary_cells.size}")
    if args.out:
        save_mesh(mesh, args.out)
        print(f"saved to {args.out}")
    return 0


def _cmd_partition(args) -> int:
    mesh = make_mesh(args.mesh, target_cells=args.cells, seed=args.seed)
    blocks = partition_mesh_blocks(
        mesh.n_cells, mesh.adjacency, args.block_size, seed=args.seed
    )
    sizes = block_sizes(blocks)
    print(f"{mesh.name}: {mesh.n_cells} cells -> {sizes.size} blocks "
          f"(target size {args.block_size})")
    print(f"edge cut: {edge_cut(blocks, mesh.adjacency)} of {mesh.n_faces} "
          f"({edge_cut(blocks, mesh.adjacency) / max(mesh.n_faces, 1):.1%})")
    print(f"balance (max/mean): {balance(blocks):.3f}")
    return 0


def _cmd_transport(args) -> int:
    mesh = make_mesh(args.mesh, target_cells=args.cells, seed=args.seed)
    if mesh.dim == 3:
        quad = Quadrature.equal_weight(directions_for_mesh(3, args.directions))
    else:
        quad = Quadrature.fan2d(args.directions)
    inst = build_instance(mesh, quad.directions)
    sched = get_algorithm("random_delay_priority")(
        inst, args.processors, seed=args.seed
    )
    problem = TransportProblem(
        mesh, quad, args.sigma_t, args.sigma_s, args.source, boundary=args.boundary
    )
    print(f"{mesh.name}: {mesh.n_cells} cells, k={quad.k}, "
          f"schedule makespan {sched.makespan}")
    if args.krylov:
        from repro.transport import solve_krylov_with_schedule

        res = solve_krylov_with_schedule(problem, sched)
        status = "converged" if res.converged else "NOT converged"
        print(f"GMRES {status} in {res.sweeps} full-mesh sweeps")
        phi = res.phi
    else:
        res = solve_with_schedule(problem, sched)
        status = "converged" if res.converged else "NOT converged"
        print(f"source iteration {status} in {res.iterations} iterations "
              f"(residual {res.final_residual:.2e})")
        phi = res.phi
    print(f"scalar flux: min {phi.min():.4f}, mean {phi.mean():.4f}, "
          f"max {phi.max():.4f}")
    if args.boundary == "white":
        exact = args.source / (args.sigma_t - args.sigma_s)
        print(f"infinite-medium exact value: {exact:.4f} "
              f"(max error {np.abs(phi - exact).max():.2e})")
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis import compare_pair

    mesh = make_mesh(args.mesh, target_cells=args.cells, seed=args.seed)
    inst = build_instance(mesh, directions_for_mesh(mesh.dim, args.directions))
    result = compare_pair(
        inst, args.algorithm_a, args.algorithm_b,
        m=args.processors, n_seeds=args.trials, seed=args.seed,
    )
    print(f"{args.algorithm_a} vs {args.algorithm_b} on {mesh.name} "
          f"(m={args.processors}, {args.trials} paired trials)")
    print(f"mean makespans: {result['mean_a']:.1f} vs {result['mean_b']:.1f}")
    print(f"paired difference (a-b): {result['mean_diff']:+.1f}, "
          f"95% CI [{result['diff_ci_low']:+.1f}, {result['diff_ci_high']:+.1f}]")
    print(f"record: {result['a_wins']} wins / {result['ties']} ties / "
          f"{result['b_wins']} losses — "
          f"{'significant' if result['significant'] else 'not significant'}")
    return 0


def _cmd_tournament(args) -> int:
    from repro.analysis import format_tournament, tournament

    algos = list(args.algorithms) or [
        "random_delay", "random_delay_priority", "level", "descendant", "dfds",
    ]
    mesh = make_mesh(args.mesh, target_cells=args.cells, seed=args.seed)
    inst = build_instance(mesh, directions_for_mesh(mesh.dim, args.directions))
    print(f"tournament on {mesh.name} (m={args.processors}, "
          f"{args.trials} paired trials)\n")
    result = tournament(inst, algos, m=args.processors,
                        n_seeds=args.trials, seed=args.seed)
    print(format_tournament(result))
    return 0


def _cmd_families(args) -> int:
    from repro.core.lower_bounds import combined_lower_bound
    from repro.instances import INSTANCE_FAMILIES, make_instance

    algos = ("random_delay", "random_delay_priority", "level", "dfds")
    col = max(len(a) for a in algos) + 2
    print(f"ratio to combined LB (n={args.size}, k={args.directions}, "
          f"m={args.processors})\n")
    print(f"{'family':18s}" + "".join(f"{a:>{col}s}" for a in algos))
    for family in sorted(INSTANCE_FAMILIES):
        inst = make_instance(family, n=args.size, k=args.directions,
                             seed=args.seed)
        lb = combined_lower_bound(inst, args.processors)
        cells = []
        for name in algos:
            sched = get_algorithm(name)(inst, args.processors, seed=args.seed)
            cells.append(sched.makespan / lb)
        print(f"{family:18s}" + "".join(f"{c:>{col}.2f}" for c in cells))
    return 0


def _cmd_fuzz(args) -> int:
    from repro.fuzz import replay_corpus, run_fuzz
    from repro.heuristics import ALGORITHMS

    algorithms = (
        {name: ALGORITHMS[name] for name in args.algorithms}
        if args.algorithms
        else None
    )
    log = None if args.quiet else print
    if args.replay:
        report = replay_corpus(args.corpus, algorithms=algorithms, log=log)
        print(report.summary())
        if report.cases_run == 0:
            print(f"(no corpus entries under {args.corpus})")
        return 0 if report.ok else 1
    report = run_fuzz(
        n_seeds=args.seeds,
        time_budget=args.time_budget,
        seed=args.seed,
        corpus_dir=None if args.no_corpus else args.corpus,
        algorithms=algorithms,
        shrink=not args.no_shrink,
        log=log,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    import json

    from repro.experiments.bench import (
        BENCH_SCHEMA_VERSION,
        run_bench,
        write_bench,
    )

    if args.trace:
        from repro import obs

        obs.enable_tracing()
        obs.reset()
    families = args.families.split(",") if args.families else None
    try:
        report = run_bench(
            smoke=args.smoke, cells=args.cells, repeats=args.repeats,
            seed=args.seed,
            grid_workers=tuple(args.grid_workers) if args.grid_workers else None,
            families=families,
        )
    except ValueError as exc:  # e.g. an unknown --families name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for case in report["cases"]:
        cols = " ".join(
            f"{eng} {entry['wall_time_s'] * 1e3:8.1f}ms"
            for eng, entry in case["engines"].items()
        )
        build_ms = (
            case["phases"]["mesh_s"]
            + case["phases"]["build_s"]
            + case["phases"]["cache_s"]
        ) * 1e3
        print(
            f"{case['family']:14s} n={case['n_tasks']:8d} m={case['m']:4d} "
            f"build {build_ms:7.1f}ms {cols} "
            f"speedup x{case['speedup']:.2f} auto={case['auto_engine']}"
        )
    if report["grid"] is not None:
        for run in report["grid"]["runs"]:
            same = "ok" if run["identical_to_serial"] else "DIFFERS"
            print(
                f"grid workers={run['workers']:2d} "
                f"{run['wall_time_s'] * 1e3:8.1f}ms "
                f"{run['rows_per_sec']:8.2f} rows/s "
                f"chunks={run['n_chunks']:3d} "
                f"worker-rss {run['peak_worker_rss_mb']:7.1f}MiB rows {same}"
            )
    if report["construction"] is not None:
        c = report["construction"]
        ident = "ok" if c["byte_identical"] else "DIFFERS"
        print(
            f"construction {c['family']} cells={c['cells']} k={c['k']} "
            f"cold {c['cold_s'] * 1e3:8.1f}ms warm {c['warm_s'] * 1e3:8.1f}ms "
            f"x{c['speedup']:.1f} hits={c['cache_hits']} arrays {ident}"
        )
    if report.get("serve") is not None:
        s = report["serve"]
        print(
            f"serve cold one-shot {s['cold']['wall_time_s'] * 1e3:8.1f}ms "
            f"warm-vs-cold x{s['warm_vs_cold_speedup']:.1f}"
        )
        for run in s["runs"]:
            same = "ok" if run["identical_to_serial"] else "DIFFERS"
            drain = "clean" if run["clean_exit"] else "DIRTY"
            print(
                f"serve workers={run['workers']:2d} "
                f"p50 {run['warm_p50_ms']:7.1f}ms "
                f"p95 {run['warm_p95_ms']:7.1f}ms "
                f"unbatched {run['unbatched_requests_per_sec']:7.1f} req/s "
                f"batched {run['batched_requests_per_sec']:7.1f} req/s "
                f"chunks={run['chunks_dispatched']:3d} "
                f"rows {same} drain {drain}"
            )
    out = args.out or f"BENCH_{BENCH_SCHEMA_VERSION}.json"
    if out == "-":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        write_bench(report, out)
        print(f"wrote {out}")
    if args.trace:
        _write_trace(args.trace)
    return 0


def _cmd_trace(args) -> int:
    import json

    from repro import obs
    from repro.experiments.configs import ExperimentConfig
    from repro.experiments.runner import run_grid

    config = ExperimentConfig(
        mesh="tetonly",
        target_cells=args.cells,
        k=args.directions,
        m_values=(8,),
        block_sizes=(1,),
        algorithms=("random_delay_priority",),
        seeds=(args.seed, args.seed + 1),
        name="trace",
    )
    obs.enable_tracing()
    obs.reset()
    try:
        run_grid(config, with_comm=True, workers=args.workers)
    finally:
        spans = obs.merge_spans([obs.drain_spans()])
        metrics = obs.drain_metrics()
        obs.disable_tracing()
    pids = sorted({s.pid for s in spans})
    print(f"{len(spans)} spans from {len(pids)} pids "
          f"(workers={args.workers}, cells={args.cells}, k={args.directions})")
    print(obs.summary_text(spans, metrics=metrics, top=args.top))
    if args.fmt == "summary":
        return 0
    if args.fmt == "flat":
        payload = obs.flat_json(spans, metrics=metrics)
        if args.out == "-":
            print(json.dumps(payload, indent=1, sort_keys=True))
        else:
            with open(args.out, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.out}")
        return 0
    if args.out == "-":
        print(json.dumps(obs.chrome_trace(spans, metrics=metrics),
                         indent=1, sort_keys=True))
    else:
        obs.write_chrome_trace(args.out, spans, metrics=metrics)
        print(f"wrote {args.out} (load it in https://ui.perfetto.dev "
              "or chrome://tracing)")
    return 0


def _cmd_campaign(args) -> int:
    from pathlib import Path

    from repro.campaign import (
        ResultStore,
        load_spec,
        report_json,
        run_campaign,
        status_text,
    )

    spec = load_spec(args.spec)
    store_path = args.store or str(
        Path(args.spec).with_suffix(".campaign.sqlite")
    )
    if args.action == "run":
        if args.trace:
            from repro import obs

            obs.enable_tracing()
            obs.reset()
        stats = run_campaign(
            spec, store_path, workers=args.workers, limit=args.limit,
            serve=args.serve,
        )
        deferred = (
            f"{stats.cells_deferred} deferred by --limit, "
            if stats.cells_deferred
            else ""
        )
        print(
            f"campaign {spec.name!r}: {stats.cells_executed} cells executed, "
            f"{stats.cells_skipped} already done, {deferred}"
            f"{stats.cells_total} total "
            f"({stats.groups} instance groups, workers={stats.workers})"
        )
        print(f"store: {store_path}")
        if args.trace:
            _write_trace(args.trace)
        return 0
    with ResultStore.open(store_path, spec) as store:
        if args.action == "status":
            print(status_text(spec, store))
            return 0
        text = report_json(spec, store)
        if args.out == "-":
            sys.stdout.write(text)
        else:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"wrote {args.out}")
        return 0


def _cmd_serve(args) -> int:
    from repro.serve.client import parse_address
    from repro.serve.server import ServeConfig, run_server

    config = ServeConfig(workers=args.workers, trace_path=args.trace)
    if args.tcp:
        config.socket_path = None
        _, config.tcp = parse_address(f"tcp:{args.tcp}")
    else:
        config.socket_path = args.socket
    if args.max_pending is not None:
        config.max_pending = args.max_pending
    if args.max_delay_ms is not None:
        config.max_delay_s = args.max_delay_ms / 1e3
    if args.max_batch is not None:
        config.max_batch = args.max_batch
    if args.max_resident_mb is not None:
        config.max_resident_bytes = int(args.max_resident_mb * 1024 * 1024)
    return run_server(config)


def _cmd_request(args) -> int:
    import json

    from repro.serve.client import ServeClient

    instance = {
        "mesh": args.mesh,
        "target_cells": args.cells,
        "mesh_seed": args.mesh_seed,
        "k": args.directions,
    }
    with ServeClient(args.addr) as client:
        if args.kind in ("status", "metrics"):
            result = client.request(args.kind)
            print(json.dumps(result, indent=1, sort_keys=True))
            return 0
        if args.kind == "publish":
            result = client.publish(
                instance,
                block_sizes=args.block_sizes or (),
                algorithms=(args.algorithm,),
                engine=args.engine,
            )
            print(f"published {result['instance'][:16]} "
                  f"({result['bytes']} bytes, blocks {result['block_sizes']}); "
                  f"daemon resident: {result['resident_bytes']} bytes")
            return 0
        requests = [
            {
                "instance": instance,
                "algorithm": args.algorithm,
                "m": args.processors,
                "block_size": args.block_size,
                "seed": seed,
                "engine": args.engine,
                "with_comm": True,
                **({"deadline_s": args.deadline} if args.deadline else {}),
            }
            for seed in range(args.seed, args.seed + max(args.count, 1))
        ]
        for request, summary in zip(requests, client.schedule_many(requests)):
            print(f"{summary.algorithm} seed={request['seed']} m={summary.m} "
                  f"makespan={summary.makespan} ratio={summary.ratio:.3f} "
                  f"idle={summary.idle_fraction:.1%}")
    return 0


def _cmd_doctor(args) -> int:
    import contextlib

    from repro import cache as build_cache
    from repro.parallel.shm_store import list_orphan_segments

    sick = 0
    orphans = list_orphan_segments()
    if orphans:
        sick = 1
        for name in orphans:
            print(f"ORPHAN shm segment: /dev/shm/{name}")
    else:
        print("shm segments: clean (no orphans)")
    ctx = (
        build_cache.override_dir(args.dir)
        if args.dir is not None
        else contextlib.nullcontext()
    )
    with ctx:
        if build_cache.cache_dir() is None:
            print("build cache: disabled (nothing to check)")
        else:
            corrupt = build_cache.list_corrupt_entries()
            if corrupt:
                sick = 1
                for name in corrupt:
                    print(f"CORRUPT cache entry: {name}")
            else:
                print(f"build cache: clean ({build_cache.cache_dir()})")
    if sick:
        print("doctor: FOUND PROBLEMS (see above)")
    else:
        print("doctor: all clear")
    return sick


def _cmd_cache(args) -> int:
    import contextlib

    from repro import cache as build_cache

    ctx = (
        build_cache.override_dir(args.dir)
        if args.dir is not None
        else contextlib.nullcontext()
    )
    with ctx:
        if build_cache.cache_dir() is None:
            print("build cache disabled (set $REPRO_CACHE_DIR or pass --dir)",
                  file=sys.stderr)
            return 2
        if args.action == "clear":
            removed = build_cache.clear_cache()
            print(f"cleared {removed} entries from {build_cache.cache_dir()}")
            return 0
        if args.action == "ls":
            entries = build_cache.list_entries()
            for e in entries:
                if "error" in e:
                    print(f"{e['key']}  CORRUPT: {e['error']}")
                else:
                    print(f"{e['key']}  {e['bytes']:12d}B  "
                          f"{e.get('name', '?')} n={e.get('n_cells', '?')} "
                          f"k={e.get('k', '?')}")
            print(f"{len(entries)} entries in {build_cache.cache_dir()}")
            return 0
        stats = build_cache.cache_stats()
        print(f"cache dir: {stats['dir']}")
        print(f"entries: {stats['entries']} "
              f"({stats['total_bytes'] / 1e6:.1f} MB of "
              f"{stats['max_bytes'] / 1e6:.1f} MB)")
        print(f"counters: {stats['counters']}")
        if stats["corrupt"]:
            # The cache analogue of list_orphan_segments: corrupt entries
            # or stray tmp files mean a writer died outside the atomic
            # rename protocol — surface them loudly.
            print(f"CORRUPT/STRAY entries: {stats['corrupt']}")
            return 1
        print("no corrupt or stray entries")
        return 0


def _cmd_lint(args) -> int:
    import os

    from repro.lint import (
        all_rules,
        get_rule,
        iter_python_files,
        lint_paths,
        lint_paths_with_deep,
    )

    if args.list_rules:
        for rule in all_rules():
            scope = "deep" if getattr(rule, "deep", False) else "file"
            print(f"{rule.code}  {rule.name} [{scope}]: {rule.description}")
        return 0
    if args.rule:
        try:
            rules = [get_rule(code) for code in args.rule]
        except KeyError as exc:
            print(f"error: unknown lint rule {exc.args[0]!r}", file=sys.stderr)
            return 2
    else:
        rules = None
    paths = list(args.paths)
    if not paths:
        default = os.path.join("src", "repro")
        if not os.path.isdir(default):
            # Installed (no src/ checkout): lint the imported package.
            default = os.path.dirname(os.path.abspath(__file__))
        paths = [default]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    files = iter_python_files(paths)
    if not files:
        print(
            f"error: no python files under: {', '.join(paths)}",
            file=sys.stderr,
        )
        return 2
    unreadable = [f for f in files if not os.access(f, os.R_OK)]
    if unreadable:
        print(
            f"error: unreadable: {', '.join(sorted(unreadable))}",
            file=sys.stderr,
        )
        return 2
    if args.deep:
        report = lint_paths_with_deep(
            paths, rules=rules, cache_dir=args.graph_cache
        )
    else:
        report = lint_paths(paths, rules=rules)
    if args.fmt == "json":
        print(report.format_json())
    elif args.fmt == "github":
        print(report.format_github())
    else:
        print(report.format_text())
    return 0 if report.ok else 1


_COMMANDS = {
    "schedule": _cmd_schedule,
    "figures": _cmd_figures,
    "mesh": _cmd_mesh,
    "partition": _cmd_partition,
    "transport": _cmd_transport,
    "compare": _cmd_compare,
    "tournament": _cmd_tournament,
    "families": _cmd_families,
    "fuzz": _cmd_fuzz,
    "bench": _cmd_bench,
    "trace": _cmd_trace,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "request": _cmd_request,
    "doctor": _cmd_doctor,
    "cache": _cmd_cache,
    "lint": _cmd_lint,
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
