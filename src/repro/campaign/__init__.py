"""Declarative, resumable experiment campaigns over the grid runner.

The campaign plane turns the paper's cartesian sweeps into data plus a
durable store, so large comparisons survive interruption and figures
are rebuilt without re-execution:

* :mod:`repro.campaign.spec` — TOML/JSON campaign specs (cartesian
  ``[[grid]]`` blocks and explicit ``[[cells]]``) compiled to a
  deterministic, content-hashed, duplicate-free cell universe.
* :mod:`repro.campaign.store` — a sqlite result store keyed by cell
  hash: status, summary, timing, worker provenance; every write is an
  atomic commit, unknown/duplicate writes fail loudly.
* :mod:`repro.campaign.executor` — ``run_campaign`` plans only the
  cells without a committed result and shards them through
  :mod:`repro.parallel` (workers- and engine-aware), checkpointing as
  results stream in; it survives ``SIGKILL`` mid-run and a rerun picks
  up exactly the unfinished cells.
* :mod:`repro.campaign.report` — status and grid-summary reports built
  purely from the store, byte-identical to a fresh ``run_grid``.

Front doors: the ``repro campaign run|status|report`` CLI and the
functions re-exported here.  See ``docs/campaigns.md``.
"""

from repro.campaign.executor import (
    CampaignStats,
    group_config,
    group_key,
    run_campaign,
)
from repro.campaign.report import campaign_rows, report_json, status_text
from repro.campaign.spec import (
    SPEC_VERSION,
    CampaignCell,
    CampaignSpec,
    cell_hash,
    load_spec,
)
from repro.campaign.store import STORE_SCHEMA_VERSION, ResultStore

__all__ = [
    "SPEC_VERSION",
    "STORE_SCHEMA_VERSION",
    "CampaignCell",
    "CampaignSpec",
    "CampaignStats",
    "ResultStore",
    "cell_hash",
    "load_spec",
    "group_key",
    "group_config",
    "run_campaign",
    "campaign_rows",
    "report_json",
    "status_text",
]
