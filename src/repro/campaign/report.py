"""Campaign status and reporting, rebuilt purely from the result store.

The report path never re-runs a cell: it loads every stored summary of
the spec's universe and folds them with the *same* aggregation the grid
runner uses (:func:`repro.experiments.runner.aggregate_row`, keyed by
the same :func:`~repro.experiments.runner.row_key`), walking groups and
rows in the universe's canonical order.  For a complete campaign the
rows — and their canonical JSON serialisation
(:func:`report_json`) — are byte-identical to running
``run_grid(group_config(...))`` from scratch, which is what the
crash-injection battery and the CI campaign-smoke job assert.
"""

from __future__ import annotations

import itertools
import json

from repro.campaign.executor import group_config, group_key
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.util.errors import CampaignError

__all__ = ["campaign_rows", "report_json", "status_text"]


def _universe_groups(spec: CampaignSpec):
    """Canonically ordered ``(group key, [(hash, cell), ...])`` pairs."""
    universe = spec.universe_hashes()
    return [
        (key, list(items))
        for key, items in itertools.groupby(
            universe.items(), key=lambda pair: group_key(pair[1])
        )
    ]


def campaign_rows(spec: CampaignSpec, store: ResultStore) -> list[dict]:
    """Grid summary rows for the whole campaign, purely from the store.

    Rows appear in canonical universe order (instance group, then
    algorithm / block size / m), each aggregated over its seeds exactly
    as ``run_grid`` would.  A universe cell without a committed result
    raises :class:`CampaignError` — report only what actually ran.
    """
    from repro.experiments.runner import aggregate_row

    done = store.done_hashes()
    missing = [
        digest for digest in spec.universe_hashes() if digest not in done
    ]
    if missing:
        raise CampaignError(
            f"campaign is incomplete: {len(missing)} of "
            f"{len(spec.universe_hashes())} cells have no result "
            "(run `repro campaign run` to finish it)"
        )
    rows = []
    for _, items in _universe_groups(spec):
        for (algorithm, block_size, m), row_items in itertools.groupby(
            items, key=lambda pair: (pair[1].algorithm, pair[1].block_size, pair[1].m)
        ):
            summaries = [store.result_for(digest) for digest, _ in row_items]
            rows.append(aggregate_row(summaries, algorithm, m, block_size))
    return rows


def report_json(spec: CampaignSpec, store: ResultStore) -> str:
    """The canonical report serialisation (the byte-identity artifact)."""
    return json.dumps(campaign_rows(spec, store), indent=1, sort_keys=True) + "\n"


def status_text(spec: CampaignSpec, store: ResultStore) -> str:
    """Human-readable progress: per-group and total done/pending counts."""
    done = store.done_hashes()
    lines = [f"campaign {spec.name!r} — store {store.path}"]
    total_done = total = 0
    for key, items in _universe_groups(spec):
        mesh, target_cells, mesh_seed, k = key
        group_done = sum(1 for digest, _ in items if digest in done)
        total_done += group_done
        total += len(items)
        lines.append(
            f"  {mesh}[{target_cells} cells, seed {mesh_seed}] k={k}: "
            f"{group_done}/{len(items)} cells done"
        )
    counts = store.counts(spec.universe_hashes())
    state = "complete" if total_done == total else "resumable"
    lines.append(f"total: {total_done}/{total} cells done ({state})")
    if counts["stale_rows"]:
        lines.append(
            f"note: {counts['stale_rows']} stored row(s) are stale "
            "(from an earlier spec) and ignored"
        )
    return "\n".join(lines)
