"""Campaign specs: declarative sweeps compiled to a content-hashed universe.

A campaign describes the paper's cartesian experiment space (mesh family
× directions × algorithm × partitioner block size × m × seed) as data —
TOML or JSON — instead of code.  Compilation turns the spec into a
**cell universe**: a canonically ordered, duplicate-free tuple of
:class:`CampaignCell`\\ s, each identified by a content hash over the
spec version, the cell's instance/run parameters, and the code-relevant
config (engine, with_comm).  The hash is the resume contract: the result
store keys rows by it, so a rerun recognises finished work no matter how
the spec file was formatted or ordered, and any change to an axis value
(or to :data:`SPEC_VERSION` when cell semantics change) yields new
hashes — stale results are never silently reused.

Spec format (TOML shown; JSON is the same shape)::

    name = "fig2-sweep"
    engine = "auto"          # optional, default "auto"
    with_comm = true         # optional, default true

    [[grid]]                 # one or more cartesian blocks
    mesh = ["tetonly"]       # every axis: scalar or list
    target_cells = 500
    mesh_seed = 0
    k = [8]
    algorithms = ["random_delay_priority"]
    block_sizes = [1, 8]
    m = [4, 16]
    seeds = [0, 1]

    [[cells]]                # plus explicit single cells
    mesh = "long"
    target_cells = 300
    mesh_seed = 0
    k = 4
    algorithm = "dfds"
    block_size = 1
    m = 8
    seed = 0

See ``docs/campaigns.md`` for the full format and resume semantics.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.util.errors import CampaignError

__all__ = [
    "SPEC_VERSION",
    "CampaignCell",
    "CampaignSpec",
    "cell_hash",
    "load_spec",
]

#: Bump when the meaning of a cell changes (e.g. a field is added to the
#: hashed identity): every existing store row becomes stale by
#: construction, so old results can never masquerade as new ones.
SPEC_VERSION = 1

#: Cartesian-axis spellings accepted in a ``[[grid]]`` block, mapped to
#: the singular :class:`CampaignCell` field each one sweeps.
_GRID_AXES = {
    "mesh": "mesh",
    "target_cells": "target_cells",
    "mesh_seed": "mesh_seed",
    "k": "k",
    "algorithms": "algorithm",
    "block_sizes": "block_size",
    "m": "m",
    "seeds": "seed",
}

#: Fields of one explicit ``[[cells]]`` entry (also the per-cell fields
#: of the hash identity, in canonical order).
_CELL_FIELDS = (
    "mesh",
    "target_cells",
    "mesh_seed",
    "k",
    "algorithm",
    "block_size",
    "m",
    "seed",
)

_INT_FIELDS = ("target_cells", "mesh_seed", "k", "block_size", "m", "seed")


@dataclass(frozen=True)
class CampaignCell:
    """One fully-specified experiment cell of a campaign universe."""

    mesh: str
    target_cells: int
    mesh_seed: int
    k: int
    algorithm: str
    block_size: int
    m: int
    seed: int

    def sort_key(self) -> tuple:
        """The canonical universe ordering (field order of the hash)."""
        return tuple(getattr(self, f) for f in _CELL_FIELDS)

    def params(self) -> dict:
        """The cell's parameters as a plain JSON-able dict."""
        return {f: getattr(self, f) for f in _CELL_FIELDS}


def cell_hash(cell: CampaignCell, engine: str, with_comm: bool) -> str:
    """Content hash identifying one cell's result.

    Covers :data:`SPEC_VERSION`, every instance/run parameter of the
    cell, and the code-relevant config (``engine``, ``with_comm``) — the
    inputs that can change the stored summary.  Deliberately excludes
    presentation-only data (campaign name, axis ordering, file format),
    so reformatting a spec never invalidates results.
    """
    identity = {
        "spec_version": SPEC_VERSION,
        "engine": engine,
        "with_comm": bool(with_comm),
        **cell.params(),
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


def _coerce_cell(raw: dict, where: str) -> CampaignCell:
    unknown = set(raw) - set(_CELL_FIELDS)
    if unknown:
        raise CampaignError(f"{where}: unknown cell field(s) {sorted(unknown)}")
    missing = [f for f in _CELL_FIELDS if f not in raw]
    if missing:
        raise CampaignError(f"{where}: missing cell field(s) {missing}")
    values = {}
    for name in _CELL_FIELDS:
        value = raw[name]
        if name in _INT_FIELDS:
            if isinstance(value, bool) or not isinstance(value, int):
                raise CampaignError(
                    f"{where}: field {name!r} must be an int, got {value!r}"
                )
            values[name] = int(value)
        else:
            if not isinstance(value, str):
                raise CampaignError(
                    f"{where}: field {name!r} must be a string, got {value!r}"
                )
            values[name] = value
    return CampaignCell(**values)


def _axis_values(raw: dict, axis: str, where: str) -> list:
    value = raw[axis]
    values = list(value) if isinstance(value, (list, tuple)) else [value]
    if not values:
        raise CampaignError(f"{where}: axis {axis!r} is empty")
    return values


def _grid_cells(raw: dict, where: str) -> list[CampaignCell]:
    unknown = set(raw) - set(_GRID_AXES)
    if unknown:
        raise CampaignError(f"{where}: unknown grid axis(es) {sorted(unknown)}")
    missing = [a for a in _GRID_AXES if a not in raw]
    if missing:
        raise CampaignError(f"{where}: missing grid axis(es) {missing}")
    axes = [_axis_values(raw, axis, where) for axis in _GRID_AXES]
    cells = []
    for combo in itertools.product(*axes):
        params = dict(zip(_GRID_AXES.values(), combo))
        cells.append(_coerce_cell(params, where))
    return cells


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign: cartesian grid blocks plus explicit cells.

    ``compile()`` is the only consumer-facing operation; everything else
    (executor, store, report) works on the compiled universe.
    """

    name: str = "campaign"
    engine: str = "auto"
    with_comm: bool = True
    grids: tuple = field(default_factory=tuple)
    cells: tuple = field(default_factory=tuple)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Build a spec from parsed TOML/JSON, validating the shape."""
        if not isinstance(data, dict):
            raise CampaignError(f"campaign spec must be a table, got {type(data)}")
        known = {"name", "engine", "with_comm", "grid", "cells"}
        unknown = set(data) - known
        if unknown:
            raise CampaignError(f"spec: unknown top-level key(s) {sorted(unknown)}")
        grids = data.get("grid", [])
        if isinstance(grids, dict):
            grids = [grids]
        cells = data.get("cells", [])
        if not grids and not cells:
            raise CampaignError("spec has no [[grid]] blocks and no [[cells]]")
        name = data.get("name", "campaign")
        engine = data.get("engine", "auto")
        with_comm = data.get("with_comm", True)
        if not isinstance(with_comm, bool):
            raise CampaignError(f"spec: with_comm must be a bool, got {with_comm!r}")
        from repro.core.list_scheduler import ENGINES

        if engine not in ENGINES:
            raise CampaignError(
                f"spec: unknown engine {engine!r} (choose from {sorted(ENGINES)})"
            )
        return cls(
            name=str(name),
            engine=str(engine),
            with_comm=with_comm,
            grids=tuple(dict(g) for g in grids),
            cells=tuple(dict(c) for c in cells),
        )

    def compile(self) -> tuple[CampaignCell, ...]:
        """The cell universe: canonically ordered and duplicate-free.

        The output is a pure function of the cell *set* the spec
        denotes: axis ordering, grid-vs-explicit spelling, and duplicate
        entries never change it (pinned by the hypothesis property
        suite in ``tests/test_campaign_properties.py``).
        """
        cells: list[CampaignCell] = []
        for i, grid in enumerate(self.grids):
            cells.extend(_grid_cells(grid, f"grid[{i}]"))
        for i, raw in enumerate(self.cells):
            cells.append(_coerce_cell(raw, f"cells[{i}]"))
        self._validate_names(cells)
        unique = {cell.sort_key(): cell for cell in cells}
        return tuple(unique[key] for key in sorted(unique))

    def universe_hashes(self) -> dict[str, CampaignCell]:
        """``{cell hash: cell}`` for the compiled universe (hash-keyed view)."""
        universe = self.compile()
        hashes = {}
        for cell in universe:
            digest = cell_hash(cell, self.engine, self.with_comm)
            hashes[digest] = cell
        if len(hashes) != len(universe):
            raise CampaignError("cell hash collision inside one universe")
        return hashes

    def spec_hash(self) -> str:
        """Hash of the whole universe (cells + code-relevant config)."""
        blob = json.dumps(sorted(self.universe_hashes()))
        return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()

    def _validate_names(self, cells: list[CampaignCell]) -> None:
        from repro.heuristics.registry import ALGORITHMS
        from repro.mesh import MESH_GENERATORS

        for cell in cells:
            if cell.mesh not in MESH_GENERATORS:
                raise CampaignError(
                    f"spec: unknown mesh {cell.mesh!r} "
                    f"(choose from {sorted(MESH_GENERATORS)})"
                )
            if cell.algorithm not in ALGORITHMS:
                raise CampaignError(f"spec: unknown algorithm {cell.algorithm!r}")
            if cell.m < 1 or cell.block_size < 1 or cell.k < 1:
                raise CampaignError(
                    f"spec: m/block_size/k must be >= 1 on {cell.params()}"
                )


def load_spec(path) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    if not path.exists():
        raise CampaignError(f"campaign spec not found: {path}")
    text = path.read_text()
    if path.suffix == ".toml":
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise CampaignError(f"{path}: invalid TOML: {exc}") from exc
    elif path.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"{path}: invalid JSON: {exc}") from exc
    else:
        raise CampaignError(
            f"campaign spec must be .toml or .json, got {path.suffix!r}"
        )
    return CampaignSpec.from_dict(data)
