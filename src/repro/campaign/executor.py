"""Resumable campaign execution over the parallel grid plane.

:func:`run_campaign` is a *plan-then-execute* loop around the result
store: compile the spec to its hashed universe, ask the store which
cells lack a committed result (after a crash: exactly the unfinished
ones), group those by sweep instance so mesh/DAG construction is paid
once per group, and execute each group either serially (memoised
instance, one checkpoint per cell) or through the
:mod:`repro.parallel` dispatcher (shared-memory instance, ``workers``
processes, one checkpoint per streamed result).  Every checkpoint is an
atomic sqlite commit, so the run survives ``SIGKILL`` at any instant —
a rerun re-executes only the cells that had not committed.

Crash injection (test hook)
---------------------------
``REPRO_CAMPAIGN_FAULT=sigkill:<K>`` arms an env-gated fault that sends
``SIGKILL`` to the driver process immediately after the K-th checkpoint
commit of the process's lifetime.  The resume battery
(``tests/test_campaign_resume.py``) uses it to prove the semantics
above: kill after K of N cells, rerun, and the store must show exactly
K + (N − K) cells with a report byte-identical to an uninterrupted run.
The hook mirrors the ``_MUTATION`` seams of
``tests/test_engine_mutations.py``: inert unless armed, and armed only
by the test battery / the CI campaign-smoke job.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field

from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import ResultStore
from repro.util.errors import CampaignError

__all__ = ["CampaignStats", "run_campaign", "group_key", "group_config"]

#: Env var arming the crash-injection hook (``sigkill:<K>``).
FAULT_ENV = "REPRO_CAMPAIGN_FAULT"

_fault_commits = 0


def _after_checkpoint() -> None:
    """Env-gated crash injection: SIGKILL after the K-th commit."""
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    kind, _, count = spec.partition(":")
    if kind != "sigkill" or not count.isdigit():
        raise CampaignError(
            f"malformed {FAULT_ENV}={spec!r} (expected 'sigkill:<K>')"
        )
    global _fault_commits
    _fault_commits += 1
    if _fault_commits >= int(count):
        os.kill(os.getpid(), signal.SIGKILL)


@dataclass
class CampaignStats:
    """What one :func:`run_campaign` call planned and executed."""

    cells_total: int = 0
    cells_skipped: int = 0
    cells_executed: int = 0
    cells_deferred: int = 0
    groups: int = 0
    workers: int = 1
    group_cells: list = field(default_factory=list)


def group_key(cell: CampaignCell) -> tuple:
    """The instance identity a cell runs against (one shared build each)."""
    return (cell.mesh, cell.target_cells, cell.mesh_seed, cell.k)


def group_config(cells, spec: CampaignSpec, workers: int = 1):
    """An :class:`~repro.experiments.configs.ExperimentConfig` covering
    ``cells`` (all sharing one :func:`group_key`), with canonically
    sorted axes — the config whose ``run_grid`` output the campaign
    report reproduces byte-for-byte."""
    from repro.experiments.configs import ExperimentConfig

    cells = list(cells)
    keys = {group_key(c) for c in cells}
    if len(keys) != 1:
        raise CampaignError(f"group_config needs one instance group, got {keys}")
    mesh, target_cells, mesh_seed, k = keys.pop()
    return ExperimentConfig(
        mesh=mesh,
        target_cells=target_cells,
        mesh_seed=mesh_seed,
        k=k,
        algorithms=tuple(sorted({c.algorithm for c in cells})),
        block_sizes=tuple(sorted({c.block_size for c in cells})),
        m_values=tuple(sorted({c.m for c in cells})),
        seeds=tuple(sorted({c.seed for c in cells})),
        engine=spec.engine,
        workers=workers,
        name=spec.name,
    )


def _group_pending(pending):
    """Split the pending ``(hash, cell)`` plan into instance groups,
    preserving canonical order inside and across groups."""
    groups: dict[tuple, list] = {}
    for digest, cell in pending:
        groups.setdefault(group_key(cell), []).append((digest, cell))
    return [groups[key] for key in sorted(groups)]


def run_campaign(
    spec: CampaignSpec,
    store_path,
    workers: int | None = None,
    stats: CampaignStats | None = None,
    limit: int | None = None,
    serve: str | None = None,
) -> CampaignStats:
    """Execute (or resume) a campaign; returns what was planned/run.

    Only cells without a committed result are executed; each result is
    committed the moment it arrives (see the module docstring for the
    crash contract).  ``workers`` follows the grid convention: ``None``
    → serial, ``0`` → one per CPU, ``N > 1`` → dispatch each instance
    group through :mod:`repro.parallel`.  ``limit`` caps this call at
    the first N pending cells in canonical order (``repro campaign run
    --limit N`` — hot-path iteration without paying the full universe);
    deferred cells stay pending and are picked up by the next run,
    exactly like a resume.  Instance construction goes through the
    memoised runner chokepoint, so the content-addressed build cache
    (:mod:`repro.cache`, enabled via ``REPRO_CACHE_DIR``) is consulted
    before any mesh/DAG build.  ``serve`` routes execution to a running
    ``repro serve`` daemon at that address instead of building locally:
    each group's cells are pipelined over one connection (so the daemon
    batches them), checkpointed per result exactly like the other modes,
    and — because every cell's randomness is seed-derived — the store
    and report stay byte-identical.
    """
    from repro import obs

    if stats is None:
        stats = CampaignStats()
    if workers is None:
        workers = 1
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise CampaignError(f"workers must be >= 0, got {workers}")
    if limit is not None and limit < 0:
        raise CampaignError(f"limit must be >= 0, got {limit}")
    stats.workers = workers

    with obs.span(
        "campaign.run",
        cat="campaign",
        args_fn=lambda: {"campaign": spec.name, "workers": workers},
    ):
        with obs.span("campaign.plan", cat="campaign"):
            universe = spec.universe_hashes()
            store = ResultStore.open(store_path, spec)
            pending = store.pending_cells(spec)
            if limit is not None and len(pending) > limit:
                stats.cells_deferred = len(pending) - limit
                pending = pending[:limit]
            groups = _group_pending(pending)
        stats.cells_total = len(universe)
        stats.cells_skipped = len(universe) - len(pending) - stats.cells_deferred
        stats.groups = len(groups)
        stats.group_cells = [len(g) for g in groups]
        obs.inc("campaign.cells_skipped", stats.cells_skipped)

        client = None
        if serve is not None:
            from repro.serve.client import ServeClient

            client = ServeClient(serve)
        try:
            with store:
                for group in groups:
                    _run_group(group, spec, store, workers, stats,
                               client=client)
        finally:
            if client is not None:
                client.close()
    return stats


def _run_group(group, spec, store, workers, stats, client=None) -> None:
    from repro import obs
    from repro.experiments.runner import run_cell
    from repro.util.timing import Timer

    config = group_config([cell for _, cell in group], spec, workers=workers)

    def checkpoint(digest, cell, summary, elapsed_s, worker=None):
        with obs.span(
            "campaign.cell",
            cat="campaign",
            args_fn=lambda: {"hash": digest, "algorithm": cell.algorithm},
        ):
            store.record_result(digest, summary, elapsed_s, worker=worker)
        stats.cells_executed += 1
        obs.inc("campaign.cells_done")
        _after_checkpoint()

    if client is not None:
        requests = [
            {
                "instance": {
                    "mesh": cell.mesh,
                    "target_cells": cell.target_cells,
                    "mesh_seed": cell.mesh_seed,
                    "k": cell.k,
                },
                "algorithm": cell.algorithm,
                "m": cell.m,
                "block_size": cell.block_size,
                "seed": cell.seed,
                "engine": spec.engine,
                "with_comm": spec.with_comm,
            }
            for _, cell in group
        ]
        serve_tag = f"serve:{client.address}"
        summaries = client.schedule_many(requests)
        for (digest, cell), summary in zip(group, summaries):
            checkpoint(digest, cell, summary, 0.0, worker=serve_tag)
    elif workers > 1 and len(group) > 1:
        from repro.parallel.dispatcher import GridCell, run_dispatch

        grid_cells = [
            GridCell(i, cell.algorithm, cell.m, cell.block_size, cell.seed)
            for i, (_, cell) in enumerate(group)
        ]
        pool_tag = f"pool:{workers}"

        def sink(index, summary):
            digest, cell = group[index]
            checkpoint(digest, cell, summary, 0.0, worker=pool_tag)

        run_dispatch(config, spec.with_comm, workers, sink, cells=grid_cells)
    else:
        for digest, cell in group:
            with Timer() as timer:
                summary = run_cell(
                    config,
                    cell.algorithm,
                    cell.m,
                    cell.block_size,
                    cell.seed,
                    with_comm=spec.with_comm,
                )
            checkpoint(digest, cell, summary, timer.elapsed)
