"""Sqlite-backed campaign result store: the resume source of truth.

One store file holds one campaign's results, keyed by the content hash
of each cell (:func:`repro.campaign.spec.cell_hash`).  The contract:

* **Registration** — opening a store against a spec registers every
  universe cell as ``pending`` (``INSERT`` for unseen hashes only);
  rows whose hash fell out of the universe (the spec changed) are kept
  but ignored by planning and reporting — stale results never leak into
  a report.
* **Checkpointing** — :meth:`ResultStore.record_result` writes one
  finished cell and commits immediately, so a ``SIGKILL`` at any moment
  loses at most the in-flight cell.  Sqlite's journal makes each commit
  atomic: after a crash the store holds exactly the committed cells.
* **Fail loudly** — recording an unknown hash, or a hash that is
  already ``done``, raises :class:`~repro.util.errors.CampaignError`;
  a dispatcher bug can never silently overwrite or invent results.
* **Corruption surfaces clearly** — a store file that sqlite cannot
  read (or that fails ``PRAGMA integrity_check``, or lacks the schema)
  raises ``CampaignError`` naming the file, instead of an opaque
  ``sqlite3`` traceback deep inside a run.

Only summaries, timings, and provenance live here; report bytes are
derived (deterministically) by :mod:`repro.campaign.report`.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
from dataclasses import fields as dataclass_fields
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterator

from repro.analysis.metrics import ScheduleSummary
from repro.campaign.spec import SPEC_VERSION, CampaignCell, CampaignSpec
from repro.util.errors import CampaignError

__all__ = ["ResultStore", "STORE_SCHEMA_VERSION"]

#: Bump on any change to the sqlite schema below.
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    cell_hash    TEXT PRIMARY KEY,
    params_json  TEXT NOT NULL,
    status       TEXT NOT NULL DEFAULT 'pending',
    summary_json TEXT,
    elapsed_s    REAL,
    worker       TEXT,
    finished_at  TEXT
);
"""

_SUMMARY_FIELDS = tuple(f.name for f in dataclass_fields(ScheduleSummary))


def _coerce(value):
    # numpy scalars -> python scalars so json round-trips exactly.
    return value.item() if hasattr(value, "item") else value


class ResultStore:
    """One campaign's sqlite result store (see module docstring)."""

    def __init__(self, path: Path, conn: sqlite3.Connection):
        self.path = path
        self._conn = conn

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def open(cls, path, spec: CampaignSpec) -> "ResultStore":
        """Open (creating if needed) the store for ``spec`` at ``path``.

        Registers every universe cell that the store has not seen yet
        and refreshes the recorded spec hash; existing rows — finished
        or pending — are never modified by opening.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            conn = sqlite3.connect(path)
            conn.execute("PRAGMA journal_mode=WAL")
            check = conn.execute("PRAGMA integrity_check").fetchone()
            if check is None or check[0] != "ok":
                raise sqlite3.DatabaseError(f"integrity_check: {check}")
            conn.executescript(_SCHEMA)
        except sqlite3.DatabaseError as exc:
            raise CampaignError(
                f"corrupted campaign store {path}: {exc} "
                "(delete the file to start the campaign from scratch)"
            ) from exc
        store = cls(path, conn)
        store._register(spec)
        return store

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _register(self, spec: CampaignSpec) -> None:
        universe = spec.universe_hashes()
        with self._conn:
            for key, value in (
                ("spec_version", str(SPEC_VERSION)),
                ("store_schema", str(STORE_SCHEMA_VERSION)),
                ("campaign", spec.name),
                ("spec_hash", spec.spec_hash()),
            ):
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    (key, value),
                )
            self._conn.executemany(
                "INSERT OR IGNORE INTO cells (cell_hash, params_json) "
                "VALUES (?, ?)",
                [
                    (digest, json.dumps(cell.params(), sort_keys=True))
                    for digest, cell in universe.items()
                ],
            )

    # -- reads ---------------------------------------------------------

    def meta(self) -> dict[str, str]:
        """The store's metadata table as a dict."""
        return dict(self._conn.execute("SELECT key, value FROM meta"))

    def status_of(self, cell_hash: str) -> str | None:
        """``'pending'``/``'done'`` for a registered hash, else ``None``."""
        row = self._conn.execute(
            "SELECT status FROM cells WHERE cell_hash = ?", (cell_hash,)
        ).fetchone()
        return row[0] if row else None

    def done_hashes(self) -> set[str]:
        """Hashes of every finished cell in the store (universe or stale)."""
        return {
            row[0]
            for row in self._conn.execute(
                "SELECT cell_hash FROM cells WHERE status = 'done'"
            )
        }

    def result_for(self, cell_hash: str) -> ScheduleSummary:
        """The stored summary of one finished cell."""
        row = self._conn.execute(
            "SELECT status, summary_json FROM cells WHERE cell_hash = ?",
            (cell_hash,),
        ).fetchone()
        if row is None:
            raise CampaignError(f"cell hash {cell_hash} is not in the store")
        status, summary_json = row
        if status != "done" or summary_json is None:
            raise CampaignError(f"cell hash {cell_hash} has no result yet")
        data = json.loads(summary_json)
        return ScheduleSummary(**{f: data[f] for f in _SUMMARY_FIELDS})

    def provenance(self) -> Iterator[tuple[str, str, float, str]]:
        """``(cell_hash, worker, elapsed_s, finished_at)`` per done cell."""
        yield from self._conn.execute(
            "SELECT cell_hash, worker, elapsed_s, finished_at FROM cells "
            "WHERE status = 'done' ORDER BY cell_hash"
        )

    def counts(self, universe_hashes) -> dict[str, int]:
        """Done/pending/stale counts against the given universe."""
        universe = set(universe_hashes)
        done = self.done_hashes()
        total_rows = self._conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0]
        return {
            "universe": len(universe),
            "done": len(done & universe),
            "pending": len(universe - done),
            "stale_rows": total_rows - len(universe),
        }

    # -- writes --------------------------------------------------------

    def record_result(
        self,
        cell_hash: str,
        summary: ScheduleSummary,
        elapsed_s: float = 0.0,
        worker: str | None = None,
    ) -> None:
        """Checkpoint one finished cell (atomic commit, fail-loud keys)."""
        status = self.status_of(cell_hash)
        if status is None:
            raise CampaignError(
                f"refusing to record result for unknown cell hash {cell_hash}"
            )
        if status == "done":
            raise CampaignError(
                f"refusing to record duplicate result for cell hash {cell_hash}"
            )
        payload = {f: _coerce(getattr(summary, f)) for f in _SUMMARY_FIELDS}
        if worker is None:
            worker = f"{socket.gethostname()}:{os.getpid()}"
        with self._conn:
            self._conn.execute(
                "UPDATE cells SET status = 'done', summary_json = ?, "
                "elapsed_s = ?, worker = ?, finished_at = ? "
                "WHERE cell_hash = ?",
                (
                    json.dumps(payload, sort_keys=True),
                    float(elapsed_s),
                    worker,
                    datetime.now(timezone.utc).isoformat(),
                    cell_hash,
                ),
            )

    # -- planning ------------------------------------------------------

    def pending_cells(self, spec: CampaignSpec) -> list[tuple[str, CampaignCell]]:
        """Universe cells without a committed result, in canonical order.

        This is the resume plan: after a crash it is exactly the
        unfinished cells; on a fresh store it is the whole universe.
        """
        done = self.done_hashes()
        universe = spec.universe_hashes()
        return [
            (digest, cell)
            for digest, cell in universe.items()
            if digest not in done
        ]
