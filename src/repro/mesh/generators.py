"""Synthetic mesh generators standing in for the paper's LANL meshes.

The paper evaluates on four unstructured tetrahedral meshes that are not
publicly distributable (``tetonly`` 31 481 cells, ``well_logging`` 43 012,
``long`` 61 737, ``prismtet`` 118 211).  Each generator here produces a
Delaunay tet mesh with the same geometric character at a configurable
cell count, exercising exactly the same code path (cells → face adjacency
→ per-direction upwind DAGs):

* :func:`tetonly_like` — tets filling a unit cube (generic compact mesh);
* :func:`well_logging_like` — a cylinder with a narrow axial bore
  removed, mimicking a well-logging tool geometry;
* :func:`long_like` — a 10:1:1 elongated bar (deep sweep levels);
* :func:`prismtet_like` — a box with two density regions, mimicking a
  mixed prism/tet mesh's hybrid grading.

``target_cells`` is approximate: Delaunay of ``P`` uniform points in 3-D
yields ≈ 6.7 P tets, and cell filtering (the bore) removes more, so the
generators overshoot the point count slightly and report the actual count
on the mesh.  Determinism: all generators take a ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.mesh import Mesh
from repro.util.errors import MeshError
from repro.util.rng import as_rng

__all__ = [
    "tetonly_like",
    "well_logging_like",
    "long_like",
    "prismtet_like",
    "graded_box",
    "unit_square_tri",
    "MESH_GENERATORS",
    "make_mesh",
    "mesh_dim",
]

#: Average tets per Delaunay point for uniform samples in a 3-D volume.
_TETS_PER_POINT = 6.7


def _points_for(target_cells: int, fudge: float = 1.0) -> int:
    return max(16, int(round(target_cells * fudge / _TETS_PER_POINT)))


def tetonly_like(target_cells: int = 2000, seed=0) -> Mesh:
    """Unit-cube tetrahedral mesh (stands in for ``tetonly``)."""
    rng = as_rng(seed)
    pts = rng.random((_points_for(target_cells), 3))
    return Mesh.from_delaunay(pts, name="tetonly_like")


def long_like(target_cells: int = 2000, seed=0, aspect: float = 10.0) -> Mesh:
    """Elongated-bar mesh, ``aspect``:1:1 (stands in for ``long``).

    The elongation stretches sweep level counts along the long axis,
    which is what makes ``long`` the paper's deepest-pipeline mesh.
    """
    rng = as_rng(seed)
    pts = rng.random((_points_for(target_cells), 3))
    pts[:, 0] *= aspect
    return Mesh.from_delaunay(pts, name="long_like")


def well_logging_like(
    target_cells: int = 2000,
    seed=0,
    bore_radius: float = 0.25,
    outer_radius: float = 1.0,
    height: float = 2.0,
) -> Mesh:
    """Cylinder-with-bore mesh (stands in for ``well_logging``).

    Points are sampled uniformly in the annulus cross-section; Delaunay
    then tetrahedralises the convex hull (which spans the bore), and tets
    whose centroid falls inside the bore are filtered out, leaving a
    genuinely non-convex unstructured mesh.
    """
    if not 0 < bore_radius < outer_radius:
        raise MeshError(
            f"need 0 < bore_radius < outer_radius, got {bore_radius}, {outer_radius}"
        )
    rng = as_rng(seed)
    # Filtering removes roughly (bore/outer)^2 of the hull volume; oversample.
    n_pts = _points_for(target_cells, fudge=1.0 / (1.0 - (bore_radius / outer_radius) ** 2))
    # Uniform in annulus: r = sqrt(u * (R^2 - r0^2) + r0^2).
    u = rng.random(n_pts)
    r = np.sqrt(u * (outer_radius**2 - bore_radius**2) + bore_radius**2)
    theta = rng.random(n_pts) * 2 * np.pi
    z = rng.random(n_pts) * height
    pts = np.stack([r * np.cos(theta), r * np.sin(theta), z], axis=1)

    def keep(centroids: np.ndarray) -> np.ndarray:
        rad = np.hypot(centroids[:, 0], centroids[:, 1])
        return rad >= bore_radius

    return Mesh.from_delaunay(pts, keep=keep, name="well_logging_like")


def prismtet_like(target_cells: int = 2000, seed=0, refine_ratio: float = 4.0) -> Mesh:
    """Two-density box mesh (stands in for the hybrid ``prismtet``).

    The lower half of the unit cube is sampled ``refine_ratio`` times more
    densely than the upper half, mimicking the grading of a mixed
    prism/tet mesh (fine prismatic boundary layer under a coarse bulk).
    """
    if refine_ratio <= 0:
        raise MeshError(f"refine_ratio must be positive, got {refine_ratio}")
    rng = as_rng(seed)
    n_pts = _points_for(target_cells)
    n_fine = int(n_pts * refine_ratio / (1.0 + refine_ratio))
    n_coarse = max(n_pts - n_fine, 8)
    fine = rng.random((n_fine, 3)) * np.array([1.0, 1.0, 0.5])
    coarse = rng.random((n_coarse, 3)) * np.array([1.0, 1.0, 0.5]) + np.array(
        [0.0, 0.0, 0.5]
    )
    pts = np.concatenate([fine, coarse], axis=0)
    return Mesh.from_delaunay(pts, name="prismtet_like")


def graded_box(
    target_cells: int = 2000,
    seed=0,
    focus=(0.5, 0.5, 0.5),
    refined_fraction: float = 0.5,
    spread: float = 0.15,
) -> Mesh:
    """Unit-cube mesh graded toward a focus point.

    Transport meshes concentrate cells near sources and detectors; this
    generator mixes uniform background points with a Gaussian cluster at
    ``focus`` (``refined_fraction`` of all points, width ``spread``),
    giving strongly non-uniform cell sizes — the regime where
    load-balance-by-cell-count (what all the schedulers assume) diverges
    most from balance-by-volume.
    """
    if not 0 <= refined_fraction < 1:
        raise MeshError(f"refined_fraction must lie in [0, 1), got {refined_fraction}")
    if spread <= 0:
        raise MeshError(f"spread must be positive, got {spread}")
    rng = as_rng(seed)
    n_pts = _points_for(target_cells)
    n_fine = int(n_pts * refined_fraction)
    base = rng.random((n_pts - n_fine, 3))
    cluster = rng.normal(loc=np.asarray(focus, dtype=np.float64),
                         scale=spread, size=(n_fine, 3))
    cluster = np.clip(cluster, 0.0, 1.0)
    pts = np.concatenate([base, cluster], axis=0)
    return Mesh.from_delaunay(pts, name="graded_box")


def unit_square_tri(target_cells: int = 200, seed=0) -> Mesh:
    """2-D triangular mesh of the unit square (Figure 1-style examples)."""
    rng = as_rng(seed)
    # Delaunay of P points in 2-D yields ≈ 2P triangles.
    n_pts = max(8, target_cells // 2)
    pts = rng.random((n_pts, 2))
    return Mesh.from_delaunay(pts, name="unit_square_tri")


#: Name → generator map used by the experiment harness and CLI examples.
MESH_GENERATORS = {
    "tetonly": tetonly_like,
    "well_logging": well_logging_like,
    "long": long_like,
    "prismtet": prismtet_like,
    "graded": graded_box,
    "square2d": unit_square_tri,
}


def make_mesh(name: str, target_cells: int = 2000, seed=0, **kwargs) -> Mesh:
    """Build a named mesh (see :data:`MESH_GENERATORS`)."""
    try:
        gen = MESH_GENERATORS[name]
    except KeyError:
        raise MeshError(
            f"unknown mesh {name!r}; known: {', '.join(MESH_GENERATORS)}"
        ) from None
    return gen(target_cells=target_cells, seed=seed, **kwargs)


def mesh_dim(name: str) -> int:
    """Spatial dimension of a named generator's meshes, without building.

    The build cache derives an instance's direction set (and hence its
    content key) before deciding whether the mesh must be constructed at
    all; every generator's dimension is fixed by its family, so the
    lookup is a constant.
    """
    if name not in MESH_GENERATORS:
        raise MeshError(
            f"unknown mesh {name!r}; known: {', '.join(MESH_GENERATORS)}"
        )
    return 2 if name == "square2d" else 3
