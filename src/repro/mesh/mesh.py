"""The :class:`Mesh` container and its two builders.

A mesh is, for scheduling purposes, just (i) a set of cells, (ii) the
face-adjacency pairs between them, and (iii) a unit normal per shared
face.  The per-direction sweep DAG orients every adjacency pair by the
sign of ``normal . direction`` (see :mod:`repro.sweeps.dag_builder`).

Builders:

* :func:`Mesh.from_delaunay` — unstructured simplex mesh from a point
  cloud via ``scipy.spatial.Delaunay`` (2-D triangles or 3-D tets), with
  optional cell filtering for non-convex shapes (the well-logging bore).
* :func:`Mesh.structured_grid` — regular quad/hex grid with integer cell
  coordinates (used for exact tests and KBA).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.geometry import (
    face_normals_outward,
    simplex_centroids,
    simplex_volumes,
)
from repro.util.errors import MeshError

__all__ = ["Mesh"]


@dataclass
class Mesh:
    """Cell-adjacency mesh with oriented face normals.

    Attributes
    ----------
    points:
        ``(P, d)`` vertex coordinates (may be empty for abstract meshes).
    cells:
        ``(n, c)`` vertex indices per cell, or ``None`` for abstract
        meshes that only carry adjacency.
    adjacency:
        ``(A, 2)`` pairs of cells sharing a face; each unordered pair
        appears exactly once.
    face_normals:
        ``(A, d)`` unit normal of the shared face, oriented from
        ``adjacency[:, 0]`` toward ``adjacency[:, 1]``.
    centroids:
        ``(n, d)`` cell centroids.
    cell_coords:
        Optional ``(n, d)`` integer grid coordinates (structured meshes
        only; consumed by KBA).
    name:
        Label used in reports.
    """

    points: np.ndarray
    cells: np.ndarray | None
    adjacency: np.ndarray
    face_normals: np.ndarray
    centroids: np.ndarray
    cell_coords: np.ndarray | None = None
    name: str = "mesh"
    meta: dict = field(default_factory=dict)
    #: (A,) area (length in 2-D) of each interior face; None when the
    #: builder has no geometry (abstract meshes).
    face_areas: np.ndarray | None = None
    #: (n,) cell volumes (areas in 2-D).
    cell_volumes: np.ndarray | None = None
    #: (B,) cell of each boundary face, with matching outward normal and
    #: area rows; used by the transport solver's leakage terms.
    boundary_cells: np.ndarray | None = None
    boundary_normals: np.ndarray | None = None
    boundary_areas: np.ndarray | None = None

    @property
    def n_cells(self) -> int:
        return int(self.centroids.shape[0])

    @property
    def dim(self) -> int:
        return int(self.centroids.shape[1])

    @property
    def n_faces(self) -> int:
        """Number of interior (shared) faces."""
        return int(self.adjacency.shape[0])

    def validate(self) -> None:
        """Check index ranges, normal unit length, and pair uniqueness."""
        n = self.n_cells
        if self.adjacency.size:
            if self.adjacency.min() < 0 or self.adjacency.max() >= n:
                raise MeshError("adjacency references a cell out of range")
            if np.any(self.adjacency[:, 0] == self.adjacency[:, 1]):
                raise MeshError("a cell cannot be adjacent to itself")
            lo = np.minimum(self.adjacency[:, 0], self.adjacency[:, 1])
            hi = np.maximum(self.adjacency[:, 0], self.adjacency[:, 1])
            pairs = lo * n + hi
            if np.unique(pairs).size != pairs.size:
                raise MeshError("duplicate adjacency pairs")
            norms = np.linalg.norm(self.face_normals, axis=1)
            if not np.allclose(norms, 1.0, atol=1e-8):
                raise MeshError("face normals must be unit length")
        if self.face_normals.shape != (self.n_faces, self.dim):
            raise MeshError(
                f"face_normals shape {self.face_normals.shape} does not match "
                f"adjacency ({self.n_faces} faces, dim {self.dim})"
            )
        if self.face_areas is not None:
            if self.face_areas.shape != (self.n_faces,):
                raise MeshError("face_areas must have one entry per interior face")
            if self.n_faces and self.face_areas.min() <= 0:
                raise MeshError("face areas must be positive")
        if self.cell_volumes is not None:
            if self.cell_volumes.shape != (n,):
                raise MeshError("cell_volumes must have one entry per cell")
            if n and self.cell_volumes.min() <= 0:
                raise MeshError("cell volumes must be positive")
        if self.boundary_cells is not None:
            b = self.boundary_cells.shape[0]
            if self.boundary_normals is None or self.boundary_normals.shape != (b, self.dim):
                raise MeshError("boundary_normals must match boundary_cells")
            if self.boundary_areas is None or self.boundary_areas.shape != (b,):
                raise MeshError("boundary_areas must match boundary_cells")
            if b and (self.boundary_cells.min() < 0 or self.boundary_cells.max() >= n):
                raise MeshError("boundary_cells reference a cell out of range")

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------

    @classmethod
    def from_delaunay(
        cls,
        points: np.ndarray,
        keep=None,
        name: str = "delaunay",
    ) -> "Mesh":
        """Delaunay mesh of a point cloud (2-D triangles / 3-D tets).

        Parameters
        ----------
        points:
            ``(P, d)`` array, ``d in (2, 3)``.
        keep:
            Optional predicate ``f(centroids) -> bool mask`` that filters
            cells (e.g. drop tets whose centroid falls inside a bore).
            Adjacency is rebuilt over the surviving cells.
        """
        from scipy.spatial import Delaunay  # deferred: big import

        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] not in (2, 3):
            raise MeshError(f"points must be (P, 2) or (P, 3); got {points.shape}")
        tri = Delaunay(points)
        cells = tri.simplices.astype(np.int64)
        neighbors = tri.neighbors  # (n, d+1); -1 = boundary
        centroids = simplex_centroids(points, cells)

        if keep is not None:
            mask = np.asarray(keep(centroids), dtype=bool)
            if mask.shape != (cells.shape[0],):
                raise MeshError("keep predicate must return a mask per cell")
            if not mask.any():
                raise MeshError("keep predicate removed every cell")
            new_id = np.full(cells.shape[0], -1, dtype=np.int64)
            new_id[mask] = np.arange(int(mask.sum()), dtype=np.int64)
            cells = cells[mask]
            centroids = centroids[mask]
            neighbors = neighbors[mask]
            # Remap neighbor ids; dropped neighbors become boundary (-1).
            valid = neighbors >= 0
            remapped = np.full_like(neighbors, -1)
            remapped[valid] = new_id[neighbors[valid]]
            neighbors = remapped

        adjacency, face_normals, face_areas, boundary = _faces_from_neighbors(
            points, cells, neighbors, centroids
        )
        mesh = cls(
            points=points,
            cells=cells,
            adjacency=adjacency,
            face_normals=face_normals,
            centroids=centroids,
            name=name,
            face_areas=face_areas,
            cell_volumes=simplex_volumes(points, cells),
            boundary_cells=boundary[0],
            boundary_normals=boundary[1],
            boundary_areas=boundary[2],
        )
        mesh.validate()
        return mesh

    @classmethod
    def structured_grid(cls, shape: tuple[int, ...], name: str = "grid") -> "Mesh":
        """Regular quad (2-D) or hex (3-D) grid with unit cells.

        ``shape`` is the cell count per axis, e.g. ``(8, 8)`` or
        ``(4, 4, 4)``.  Centroids sit at integer-plus-half coordinates and
        ``cell_coords`` carries the integer grid indices for KBA.
        """
        shape = tuple(int(s) for s in shape)
        d = len(shape)
        if d not in (2, 3) or any(s <= 0 for s in shape):
            raise MeshError(f"shape must be 2 or 3 positive ints, got {shape}")
        grids = np.meshgrid(*[np.arange(s) for s in shape], indexing="ij")
        coords = np.stack([g.ravel() for g in grids], axis=1).astype(np.int64)
        n = coords.shape[0]
        strides = np.array(
            [int(np.prod(shape[a + 1 :])) for a in range(d)], dtype=np.int64
        )
        cell_id = coords @ strides

        adj_chunks = []
        normal_chunks = []
        b_cells, b_normals = [], []
        for axis in range(d):
            has_next = coords[:, axis] < shape[axis] - 1
            src = cell_id[has_next]
            dst = src + strides[axis]
            adj_chunks.append(np.stack([src, dst], axis=1))
            normal = np.zeros((src.size, d))
            normal[:, axis] = 1.0
            normal_chunks.append(normal)
            # Domain-boundary faces at both ends of this axis.
            for coord_val, sign in ((0, -1.0), (shape[axis] - 1, 1.0)):
                on_edge = cell_id[coords[:, axis] == coord_val]
                bn = np.zeros((on_edge.size, d))
                bn[:, axis] = sign
                b_cells.append(on_edge)
                b_normals.append(bn)
        adjacency = (
            np.concatenate(adj_chunks, axis=0)
            if adj_chunks
            else np.empty((0, 2), dtype=np.int64)
        )
        face_normals = (
            np.concatenate(normal_chunks, axis=0)
            if normal_chunks
            else np.empty((0, d))
        )
        boundary_cells = np.concatenate(b_cells)
        mesh = cls(
            points=np.empty((0, d)),
            cells=None,
            adjacency=adjacency,
            face_normals=face_normals,
            centroids=coords.astype(np.float64) + 0.5,
            cell_coords=coords,
            name=name,
            # Stored as a list so the JSON mesh-file round-trip is exact.
            meta={"shape": list(shape)},
            face_areas=np.ones(adjacency.shape[0]),
            cell_volumes=np.ones(n),
            boundary_cells=boundary_cells,
            boundary_normals=np.concatenate(b_normals, axis=0),
            boundary_areas=np.ones(boundary_cells.size),
        )
        mesh.validate()
        return mesh


def _face_measure(points: np.ndarray, face_vertices: np.ndarray) -> np.ndarray:
    """Area (3-D triangle) or length (2-D edge) of each face."""
    fp = points[face_vertices]
    if points.shape[1] == 2:
        return np.linalg.norm(fp[:, 1, :] - fp[:, 0, :], axis=1)
    e1 = fp[:, 1, :] - fp[:, 0, :]
    e2 = fp[:, 2, :] - fp[:, 0, :]
    return 0.5 * np.linalg.norm(np.cross(e1, e2), axis=1)


def _faces_from_neighbors(
    points: np.ndarray,
    cells: np.ndarray,
    neighbors: np.ndarray,
    centroids: np.ndarray,
):
    """Interior + boundary face data from Delaunay neighbor arrays.

    ``neighbors[t, j]`` is the simplex sharing the face of ``t`` opposite
    its ``j``-th vertex (-1 on the boundary).  Each interior unordered
    pair is emitted once (from the lower-id side) with the normal
    oriented low→high; every boundary face is emitted with its outward
    normal.
    """
    n, verts_per_cell = cells.shape
    t_all = np.repeat(np.arange(n, dtype=np.int64), verts_per_cell)
    opp_all = np.tile(np.arange(verts_per_cell), n)
    nb_all = neighbors.ravel()

    # Face vertices = all vertices of t except the opposite one.
    all_idx = np.arange(verts_per_cell)
    face_local = np.stack(
        [np.delete(all_idx, j) for j in range(verts_per_cell)], axis=0
    )  # (verts_per_cell, d)

    # Interior faces, each pair once from the lower-id side.
    take = (nb_all >= 0) & (t_all < nb_all)
    t_ids, opp, nb = t_all[take], opp_all[take], nb_all[take]
    face_vertices = cells[t_ids[:, None], face_local[opp]]
    normals = face_normals_outward(points, face_vertices, centroids[t_ids])
    areas = _face_measure(points, face_vertices)
    adjacency = np.stack([t_ids, nb], axis=1)

    # Boundary faces (outward normals).
    btake = nb_all < 0
    bt, bopp = t_all[btake], opp_all[btake]
    bverts = cells[bt[:, None], face_local[bopp]]
    if bt.size:
        bnormals = face_normals_outward(points, bverts, centroids[bt])
        bareas = _face_measure(points, bverts)
    else:
        d = points.shape[1]
        bnormals = np.empty((0, d))
        bareas = np.empty(0)
    return adjacency, normals, areas, (bt, bnormals, bareas)
