"""Mesh persistence: a minimal ``.npz``-based format.

Meshes are pure numpy payloads, so ``numpy.savez_compressed`` round-trips
them exactly.  This lets expensive generated meshes (or externally
converted ones) be cached between experiment runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.mesh.mesh import Mesh
from repro.util.errors import MeshError

__all__ = ["save_mesh", "load_mesh"]

_FORMAT_VERSION = 1


def save_mesh(mesh: Mesh, path) -> None:
    """Write ``mesh`` to ``path`` (a ``.npz`` file)."""
    path = Path(path)
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "points": mesh.points,
        "adjacency": mesh.adjacency,
        "face_normals": mesh.face_normals,
        "centroids": mesh.centroids,
        "name": np.array(mesh.name),
        "meta": np.array(json.dumps(mesh.meta, default=str)),
    }
    optional = {
        "cells": mesh.cells,
        "cell_coords": mesh.cell_coords,
        "face_areas": mesh.face_areas,
        "cell_volumes": mesh.cell_volumes,
        "boundary_cells": mesh.boundary_cells,
        "boundary_normals": mesh.boundary_normals,
        "boundary_areas": mesh.boundary_areas,
    }
    for key, value in optional.items():
        if value is not None:
            payload[key] = value
    np.savez_compressed(path, **payload)


def load_mesh(path) -> Mesh:
    """Read a mesh written by :func:`save_mesh`."""
    path = Path(path)
    if not path.exists():
        raise MeshError(f"mesh file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise MeshError(
                f"unsupported mesh format version {version} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        def opt(key):
            return data[key] if key in data else None

        mesh = Mesh(
            points=data["points"],
            cells=opt("cells"),
            adjacency=data["adjacency"],
            face_normals=data["face_normals"],
            centroids=data["centroids"],
            cell_coords=opt("cell_coords"),
            name=str(data["name"]),
            meta=json.loads(str(data["meta"])),
            face_areas=opt("face_areas"),
            cell_volumes=opt("cell_volumes"),
            boundary_cells=opt("boundary_cells"),
            boundary_normals=opt("boundary_normals"),
            boundary_areas=opt("boundary_areas"),
        )
    mesh.validate()
    return mesh
