"""Vectorised geometric primitives for simplex meshes.

All functions operate on arrays of simplices at once (no per-cell Python
loops), per the HPC guides: the mesh builders below call these on every
face of a 100k-cell mesh in a handful of numpy ops.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import MeshError

__all__ = [
    "simplex_centroids",
    "simplex_volumes",
    "face_normals_outward",
]


def simplex_centroids(points: np.ndarray, cells: np.ndarray) -> np.ndarray:
    """Centroid of every simplex: mean of its vertex coordinates."""
    return points[cells].mean(axis=1)


def simplex_volumes(points: np.ndarray, cells: np.ndarray) -> np.ndarray:
    """Unsigned volume (area in 2-D) of every simplex.

    Uses the determinant formula ``|det(v_1 - v_0, ..., v_d - v_0)| / d!``.
    """
    p = points[cells]
    d = points.shape[1]
    if cells.shape[1] != d + 1:
        raise MeshError(
            f"simplices in {d}-D need {d + 1} vertices, got {cells.shape[1]}"
        )
    edges = p[:, 1:, :] - p[:, :1, :]
    det = np.linalg.det(edges)
    factorial = 1
    for i in range(2, d + 1):
        factorial *= i
    return np.abs(det) / factorial


def face_normals_outward(
    points: np.ndarray,
    face_vertices: np.ndarray,
    inside_reference: np.ndarray,
) -> np.ndarray:
    """Unit normals of faces, oriented away from a reference point.

    Parameters
    ----------
    points:
        ``(P, d)`` vertex coordinates, ``d in (2, 3)``.
    face_vertices:
        ``(F, d)`` vertex indices per face (an edge in 2-D, a triangle in
        3-D).
    inside_reference:
        ``(F, d)`` a point on the *inside* of each face (e.g. the owning
        cell's centroid); the returned normal points away from it.

    Returns
    -------
    ``(F, d)`` unit normals.  Degenerate (zero-area) faces raise
    :class:`MeshError` — they would make the upwind test meaningless.
    """
    d = points.shape[1]
    fp = points[face_vertices]
    if d == 2:
        edge = fp[:, 1, :] - fp[:, 0, :]
        normal = np.stack([edge[:, 1], -edge[:, 0]], axis=1)
    elif d == 3:
        e1 = fp[:, 1, :] - fp[:, 0, :]
        e2 = fp[:, 2, :] - fp[:, 0, :]
        normal = np.cross(e1, e2)
    else:
        raise MeshError(f"only 2-D and 3-D meshes are supported, got d={d}")
    norms = np.linalg.norm(normal, axis=1)
    if np.any(norms <= 0):
        raise MeshError(
            f"{int((norms <= 0).sum())} degenerate faces (zero area)"
        )
    normal /= norms[:, None]
    # Flip normals that point toward the inside reference.
    toward = np.einsum("fd,fd->f", normal, inside_reference - fp[:, 0, :])
    normal[toward > 0] *= -1.0
    return normal
