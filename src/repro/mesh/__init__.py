"""Mesh substrate: containers, generators, geometry, persistence.

The paper's LANL meshes are not public; :mod:`repro.mesh.generators`
builds synthetic Delaunay tet meshes with matching geometric character
(see DESIGN.md, "Substitutions").
"""

from repro.mesh.mesh import Mesh
from repro.mesh.generators import (
    tetonly_like,
    well_logging_like,
    long_like,
    prismtet_like,
    graded_box,
    unit_square_tri,
    MESH_GENERATORS,
    make_mesh,
)
from repro.mesh.geometry import (
    simplex_centroids,
    simplex_volumes,
    face_normals_outward,
)
from repro.mesh.io import save_mesh, load_mesh

__all__ = [
    "Mesh",
    "tetonly_like",
    "well_logging_like",
    "long_like",
    "prismtet_like",
    "graded_box",
    "unit_square_tri",
    "MESH_GENERATORS",
    "make_mesh",
    "simplex_centroids",
    "simplex_volumes",
    "face_normals_outward",
    "save_mesh",
    "load_mesh",
]
