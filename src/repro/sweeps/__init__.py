"""Sweep machinery: direction sets, DAG induction, cycle breaking."""

from repro.sweeps.directions import (
    level_symmetric,
    fibonacci_sphere,
    circle_directions,
    random_directions,
    directions_for_mesh,
    num_level_symmetric_directions,
)
from repro.sweeps.dag_builder import (
    sweep_edges,
    sweep_dag,
    build_instance,
    build_instance_batched,
)
from repro.sweeps.cycle_breaking import break_cycles, find_sccs
from repro.sweeps.batching import direction_batches, batched_schedule

__all__ = [
    "level_symmetric",
    "fibonacci_sphere",
    "circle_directions",
    "random_directions",
    "directions_for_mesh",
    "num_level_symmetric_directions",
    "sweep_edges",
    "sweep_dag",
    "build_instance",
    "build_instance_batched",
    "break_cycles",
    "find_sccs",
    "direction_batches",
    "batched_schedule",
]
