"""Sweep direction sets.

The S_n transport application sweeps a *level-symmetric quadrature* set:
``N (N + 2)`` unit directions arranged symmetrically over the octants
(S_2 = 8, S_4 = 24, S_6 = 48, S_8 = 80 — the paper's experiments use 8 to
48 directions).  We implement the standard LQ_n construction plus
generic direction sets (Fibonacci sphere, 2-D fans, random) for
non-geometric and test instances.

LQ_n construction: distinct cosines ``mu_1 < .. < mu_{N/2}`` with
``mu_a^2 = mu_1^2 + (a - 1) * 2 (1 - 3 mu_1^2) / (N - 2)``; the directions
are all sign combinations of ``(mu_a, mu_b, mu_c)`` with
``a + b + c = N/2 + 2``.  The identity
``mu_a^2 + mu_b^2 + mu_c^2 = 1`` holds for every admissible triple, so all
directions are unit vectors regardless of the ``mu_1`` choice; ``mu_1``
values follow the standard tables (Lewis & Miller) where available.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ReproError
from repro.util.rng import as_rng

__all__ = [
    "level_symmetric",
    "fibonacci_sphere",
    "circle_directions",
    "random_directions",
    "num_level_symmetric_directions",
]

#: Standard first-cosine values for the LQ_n quadrature (Lewis & Miller).
_MU1_TABLE = {
    2: 0.5773503,
    4: 0.3500212,
    6: 0.2666355,
    8: 0.2182179,
    12: 0.1672126,
    16: 0.1389568,
}


def num_level_symmetric_directions(order: int) -> int:
    """Number of directions in the S_order set: ``order * (order + 2)``."""
    _check_order(order)
    return order * (order + 2)


def level_symmetric(order: int) -> np.ndarray:
    """The LQ_n level-symmetric quadrature directions, ``(k, 3)`` unit rows.

    ``order`` must be even and >= 2.  ``order=4`` gives the paper's
    24-direction set.
    """
    _check_order(order)
    half = order // 2
    mu1 = _MU1_TABLE.get(order)
    if mu1 is None:
        # Fallback consistent with the table's trend; any mu1 in (0, 1/sqrt 3)
        # yields unit directions, the choice only tunes quadrature accuracy.
        mu1 = np.sqrt(1.0 / (3.0 * (order - 1)))
    mu = np.empty(half)
    mu[0] = mu1
    if order > 2:
        delta = 2.0 * (1.0 - 3.0 * mu1**2) / (order - 2)
        for a in range(1, half):
            mu[a] = np.sqrt(mu1**2 + a * delta)

    dirs = []
    target = half + 2
    for a in range(1, half + 1):
        for b in range(1, half + 1):
            c = target - a - b
            if 1 <= c <= half:
                dirs.append((mu[a - 1], mu[b - 1], mu[c - 1]))
    base = np.array(dirs)
    signs = np.array(
        [(sx, sy, sz) for sx in (1, -1) for sy in (1, -1) for sz in (1, -1)],
        dtype=np.float64,
    )
    out = (base[:, None, :] * signs[None, :, :]).reshape(-1, 3)
    assert out.shape[0] == order * (order + 2)
    return out


def fibonacci_sphere(k: int) -> np.ndarray:
    """``k`` near-evenly spread unit directions on the sphere (3-D)."""
    if k <= 0:
        raise ReproError(f"need at least one direction, got {k}")
    i = np.arange(k, dtype=np.float64) + 0.5
    phi = np.pi * (3.0 - np.sqrt(5.0)) * i
    z = 1.0 - 2.0 * i / k
    r = np.sqrt(np.maximum(0.0, 1.0 - z * z))
    return np.stack([r * np.cos(phi), r * np.sin(phi), z], axis=1)


def circle_directions(k: int, offset: float = 0.0) -> np.ndarray:
    """``k`` evenly spaced unit directions in the plane (2-D meshes)."""
    if k <= 0:
        raise ReproError(f"need at least one direction, got {k}")
    theta = offset + 2.0 * np.pi * np.arange(k) / k
    return np.stack([np.cos(theta), np.sin(theta)], axis=1)


def random_directions(k: int, dim: int = 3, seed=None) -> np.ndarray:
    """``k`` uniformly random unit directions (normalised Gaussians)."""
    if k <= 0:
        raise ReproError(f"need at least one direction, got {k}")
    if dim not in (2, 3):
        raise ReproError(f"directions must be 2-D or 3-D, got dim={dim}")
    rng = as_rng(seed)
    v = rng.standard_normal((k, dim))
    norms = np.linalg.norm(v, axis=1, keepdims=True)
    # A zero vector from the Gaussian has probability 0 but guard anyway.
    degenerate = norms[:, 0] < 1e-12
    if degenerate.any():
        v[degenerate] = np.eye(dim)[0]
        norms = np.linalg.norm(v, axis=1, keepdims=True)
    return v / norms


def directions_for_mesh(dim: int, k: int, seed=None) -> np.ndarray:
    """Convenience: a sensible k-direction set for a mesh of dimension dim.

    3-D: the level-symmetric set when ``k`` matches an S_n count,
    otherwise a Fibonacci sphere.  2-D: an even fan on the circle.
    """
    if dim == 2:
        return circle_directions(k)
    for order in (2, 4, 6, 8, 12, 16):
        if num_level_symmetric_directions(order) == k:
            return level_symmetric(order)
    return fibonacci_sphere(k)


def _check_order(order: int) -> None:
    if order < 2 or order % 2:
        raise ReproError(f"S_n order must be even and >= 2, got {order}")


__all__.append("directions_for_mesh")
