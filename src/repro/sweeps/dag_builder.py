"""Building per-direction sweep DAGs from a mesh (paper Section 3).

For a direction ``w`` and adjacent cells ``(u, v)`` sharing a face with
unit normal ``n`` (oriented u→v), the upwind test is the sign of
``n . w``:

* ``n . w > 0`` — flux flows from ``u`` into ``v``: edge ``u -> v``;
* ``n . w < 0`` — edge ``v -> u``;
* ``|n . w| <= tol`` — the face is parallel to the sweep; no constraint.

The induced digraph is acyclic for Delaunay meshes; for general meshes
:func:`repro.sweeps.cycle_breaking.break_cycles` removes back-edges along
the centroid projection (the paper's "otherwise we break the cycles").
"""

from __future__ import annotations

import numpy as np

from repro.core.dag import Dag
from repro.core.instance import SweepInstance
from repro.mesh.mesh import Mesh
from repro.sweeps.cycle_breaking import break_cycles
from repro.util.errors import MeshError

__all__ = ["sweep_edges", "sweep_dag", "build_instance"]

#: Faces with |normal . direction| below this carry no flux constraint.
DEFAULT_TOL = 1e-12


def sweep_edges(mesh: Mesh, direction: np.ndarray, tol: float = DEFAULT_TOL) -> np.ndarray:
    """Directed edge array induced on ``mesh`` by one sweep direction."""
    direction = np.asarray(direction, dtype=np.float64)
    if direction.shape != (mesh.dim,):
        raise MeshError(
            f"direction has shape {direction.shape}, expected ({mesh.dim},)"
        )
    if mesh.n_faces == 0:
        return np.empty((0, 2), dtype=np.int64)
    dots = mesh.face_normals @ direction
    fwd = dots > tol
    bwd = dots < -tol
    edges = np.concatenate(
        [mesh.adjacency[fwd], mesh.adjacency[bwd][:, ::-1]], axis=0
    )
    return np.ascontiguousarray(edges)


def sweep_dag(
    mesh: Mesh,
    direction: np.ndarray,
    tol: float = DEFAULT_TOL,
    allow_cycle_breaking: bool = True,
) -> Dag:
    """The sweep DAG of one direction, breaking cycles if necessary."""
    edges = sweep_edges(mesh, direction, tol=tol)
    if allow_cycle_breaking:
        projection = mesh.centroids @ np.asarray(direction, dtype=np.float64)
        edges, _removed = break_cycles(mesh.n_cells, edges, order_key=projection)
    return Dag(mesh.n_cells, edges)


def build_instance(
    mesh: Mesh,
    directions: np.ndarray,
    tol: float = DEFAULT_TOL,
    name: str | None = None,
) -> SweepInstance:
    """Assemble the full sweep-scheduling instance for a direction set."""
    directions = np.asarray(directions, dtype=np.float64)
    if directions.ndim != 2 or directions.shape[1] != mesh.dim:
        raise MeshError(
            f"directions must be (k, {mesh.dim}); got {directions.shape}"
        )
    dags = [sweep_dag(mesh, w, tol=tol) for w in directions]
    return SweepInstance(
        mesh.n_cells,
        dags,
        cell_graph_edges=mesh.adjacency,
        name=name or f"{mesh.name}_k{directions.shape[0]}",
    )
