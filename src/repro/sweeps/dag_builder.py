"""Building per-direction sweep DAGs from a mesh (paper Section 3).

For a direction ``w`` and adjacent cells ``(u, v)`` sharing a face with
unit normal ``n`` (oriented u→v), the upwind test is the sign of
``n . w``:

* ``n . w > 0`` — flux flows from ``u`` into ``v``: edge ``u -> v``;
* ``n . w < 0`` — edge ``v -> u``;
* ``|n . w| <= tol`` — the face is parallel to the sweep; no constraint.

The induced digraph is acyclic for Delaunay meshes; for general meshes
:func:`repro.sweeps.cycle_breaking.break_cycles` removes back-edges along
the centroid projection (the paper's "otherwise we break the cycles").
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.dag import Dag, batch_csr_from_edges, batch_levels
from repro.core.instance import SweepInstance
from repro.mesh.mesh import Mesh
from repro.sweeps.cycle_breaking import break_cycles
from repro.util.errors import InvalidInstanceError, MeshError

__all__ = ["sweep_edges", "sweep_dag", "build_instance", "build_instance_batched"]

#: Faces with |normal . direction| below this carry no flux constraint.
DEFAULT_TOL = 1e-12

#: Test seam (see ``tests/test_batched_builder.py``): set to
#: ``"skip_cycle_check"`` to break the acyclicity fast-path predicate —
#: every direction then skips Tarjan unconditionally, so a cyclic mesh
#: must be caught by the equivalence/validation battery.  Inert in
#: production (always ``None`` outside the mutation tests).
_MUTATION: str | None = None


def sweep_edges(mesh: Mesh, direction: np.ndarray, tol: float = DEFAULT_TOL) -> np.ndarray:
    """Directed edge array induced on ``mesh`` by one sweep direction."""
    direction = np.asarray(direction, dtype=np.float64)
    if direction.shape != (mesh.dim,):
        raise MeshError(
            f"direction has shape {direction.shape}, expected ({mesh.dim},)"
        )
    if mesh.n_faces == 0:
        return np.empty((0, 2), dtype=np.int64)
    dots = mesh.face_normals @ direction
    fwd = dots > tol
    bwd = dots < -tol
    edges = np.concatenate(
        [mesh.adjacency[fwd], mesh.adjacency[bwd][:, ::-1]], axis=0
    )
    return np.ascontiguousarray(edges)


def sweep_dag(
    mesh: Mesh,
    direction: np.ndarray,
    tol: float = DEFAULT_TOL,
    allow_cycle_breaking: bool = True,
) -> Dag:
    """The sweep DAG of one direction, breaking cycles if necessary."""
    edges = sweep_edges(mesh, direction, tol=tol)
    if allow_cycle_breaking:
        projection = mesh.centroids @ np.asarray(direction, dtype=np.float64)
        edges, _removed = break_cycles(mesh.n_cells, edges, order_key=projection)
    return Dag(mesh.n_cells, edges)


def build_instance(
    mesh: Mesh,
    directions: np.ndarray,
    tol: float = DEFAULT_TOL,
    name: str | None = None,
) -> SweepInstance:
    """Assemble the full sweep-scheduling instance for a direction set."""
    directions = np.asarray(directions, dtype=np.float64)
    if directions.ndim != 2 or directions.shape[1] != mesh.dim:
        raise MeshError(
            f"directions must be (k, {mesh.dim}); got {directions.shape}"
        )
    dags = [sweep_dag(mesh, w, tol=tol) for w in directions]
    return SweepInstance(
        mesh.n_cells,
        dags,
        cell_graph_edges=mesh.adjacency,
        name=name or f"{mesh.name}_k{directions.shape[0]}",
    )


def build_instance_batched(
    mesh: Mesh,
    directions: np.ndarray,
    tol: float = DEFAULT_TOL,
    name: str | None = None,
) -> SweepInstance:
    """Batched multi-direction instance construction (one pass, k DAGs).

    Bit-identical to :func:`build_instance` (the per-direction reference
    path, locked by ``tests/test_batched_builder.py``) but built in four
    batched phases instead of ``k`` independent ``sweep_dag`` calls:

    1. **edges** — one ``face_normals @ directions.T`` product gives all
       ``n_faces x k`` upwind signs; every per-direction edge array is
       assembled into one shared ``(sum E_i, 2)`` buffer with the exact
       ``concat(adjacency[fwd], adjacency[bwd][:, ::-1])`` layout of
       :func:`sweep_edges`.
    2. **csr** — one stable argsort builds every DAG's successor CSR
       (:func:`repro.core.dag.batch_csr_from_edges`).
    3. **levels** — one union frontier sweep computes every direction's
       level structure (:func:`repro.core.dag.batch_levels`) and the flat
       ``task_levels`` array, so downstream priority setup is a cache
       hit.
    4. **cycle check** — the acyclicity fast path: the Kahn frontier
       sweep of phase 3 *is* the certificate — a direction whose sweep
       consumed every task is acyclic, and on an acyclic digraph
       :func:`break_cycles` provably returns its input unchanged (no
       nontrivial SCC → early return), so the Tarjan SCC pass is skipped
       (``build.tarjan_skipped`` counts these; every Delaunay direction
       takes it).  A stalled sweep (negative levels) means a genuine
       cycle: those directions — and only those — fall back to
       :func:`break_cycles` with the seed path's centroid-projection
       order key, then CSR and levels are rebuilt.  (Ranking cells by
       the projection ``centroid . w`` and testing "every edge forward"
       is *not* a usable certificate: on Delaunay meshes ~25% of upwind
       edges run backward in projection order while the digraph is still
       acyclic, so that predicate would send every direction through
       Tarjan.)

    Raises :class:`~repro.util.errors.InvalidInstanceError` if any
    direction is still cyclic after phase 4 — impossible unless the
    cycle detection is broken (the mutation battery's tripwire).
    """
    directions = np.asarray(directions, dtype=np.float64)
    if directions.ndim != 2 or directions.shape[1] != mesh.dim:
        raise MeshError(
            f"directions must be (k, {mesh.dim}); got {directions.shape}"
        )
    k = int(directions.shape[0])
    n = mesh.n_cells
    with obs.span(
        "build.edges",
        cat="build",
        args_fn=lambda: {"k": k, "n_faces": mesh.n_faces},
    ):
        if mesh.n_faces:
            dots = mesh.face_normals @ directions.T
            fwd = dots > tol
            bwd = dots < -tol
        else:
            fwd = bwd = np.zeros((0, k), dtype=bool)
        n_fwd = fwd.sum(axis=0).astype(np.int64)
        counts = n_fwd + bwd.sum(axis=0).astype(np.int64)
        starts = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        edges_all = np.empty((int(starts[k]), 2), dtype=np.int64)
        per_dag_edges = []
        for i in range(k):
            block = edges_all[starts[i] : starts[i + 1]]
            nf = int(n_fwd[i])
            block[:nf] = mesh.adjacency[fwd[:, i]]
            block[nf:] = mesh.adjacency[bwd[:, i]][:, ::-1]
            per_dag_edges.append(block)

    def _assemble(flat, counts):
        bounds = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        with obs.span(
            "build.csr",
            cat="build",
            args_fn=lambda: {"edges": int(flat.shape[0])},
        ):
            csrs = batch_csr_from_edges(n, flat, counts)
        dags = []
        for i in range(k):
            g = Dag(n, flat[bounds[i] : bounds[i + 1]], validate=False)
            g._succ_off, g._succ_tgt = csrs[i]
            dags.append(g)
        with obs.span("build.levels", cat="build"):
            task_level = batch_levels(dags)
        return dags, task_level

    dags, task_level = _assemble(edges_all, counts)
    with obs.span("build.cycle_check", cat="build"):
        cyclic = [i for i, g in enumerate(dags) if g._num_levels == -1]
        if _MUTATION == "skip_cycle_check":
            cyclic = []
        obs.inc("build.tarjan_skipped", k - len(cyclic))
        if cyclic:
            proj = mesh.centroids @ directions[cyclic].T
            repaired = [g.edges for g in dags]
            for col, i in enumerate(cyclic):
                repaired[i], _removed = break_cycles(
                    n, repaired[i], order_key=proj[:, col]
                )
            counts = np.array(
                [e.shape[0] for e in repaired], dtype=np.int64
            )
            edges_all = (
                np.concatenate(repaired, axis=0)
                if int(counts.sum())
                else np.empty((0, 2), dtype=np.int64)
            )
    if cyclic:
        dags, task_level = _assemble(edges_all, counts)
    if task_level.min(initial=0) < 0:
        bad = next(i for i, g in enumerate(dags) if g._num_levels == -1)
        raise InvalidInstanceError(
            f"direction {bad}: graph contains a cycle after the "
            "acyclicity fast path — the cycle-check certificate is broken"
        )
    inst = SweepInstance(
        mesh.n_cells,
        dags,
        cell_graph_edges=mesh.adjacency,
        name=name or f"{mesh.name}_k{k}",
    )
    inst._task_level = task_level
    return inst
