"""Breaking cycles in induced sweep digraphs.

The paper assumes the per-direction digraphs are acyclic "(otherwise we
break the cycles)".  Delaunay meshes are provably acyclic for any fixed
sweep direction (Edelsbrunner's acyclicity theorem), but general
unstructured meshes — and adversarial test graphs — can contain cycles,
so we implement the standard fix:

1. find strongly connected components (scipy's Tarjan, linear time);
2. inside every nontrivial SCC, keep only edges consistent with a total
   order that follows the sweep: cells ordered by the projection of their
   centroid onto the direction, ties broken by cell id.

Dropping (rather than flipping) back-edges is the physically meaningful
choice: a dropped dependency corresponds to lagging that face's flux one
iteration, which is how transport codes actually handle cyclic meshes.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

__all__ = ["break_cycles", "find_sccs"]


def find_sccs(n: int, edges: np.ndarray) -> np.ndarray:
    """Strongly-connected-component label per vertex (scipy Tarjan)."""
    if n == 0:
        return np.empty(0, dtype=np.int64)
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.shape[0] == 0:
        return np.arange(n, dtype=np.int64)
    data = np.ones(edges.shape[0], dtype=np.int8)
    adj = coo_matrix((data, (edges[:, 0], edges[:, 1])), shape=(n, n))
    _, labels = connected_components(adj, directed=True, connection="strong")
    return labels.astype(np.int64)


def break_cycles(
    n: int,
    edges: np.ndarray,
    order_key: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Return ``(acyclic_edges, n_removed)``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        ``(E, 2)`` directed edges, possibly cyclic.
    order_key:
        Per-vertex float used to orient edges inside SCCs (typically the
        centroid projected onto the sweep direction).  ``None`` falls back
        to vertex ids.

    Edges whose endpoints lie in different SCCs are always kept (they can
    never be on a cycle).  Within an SCC of size > 1, an edge ``u -> v``
    survives iff ``(order_key[u], u) < (order_key[v], v)``; that
    lexicographic pair is a strict total order, so the result is acyclic.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.shape[0] == 0:
        return edges, 0
    labels = find_sccs(n, edges)
    scc_sizes = np.bincount(labels)
    src, dst = edges[:, 0], edges[:, 1]
    in_cycle = (labels[src] == labels[dst]) & (scc_sizes[labels[src]] > 1)
    if not in_cycle.any():
        return edges, 0
    if order_key is None:
        order_key = np.arange(n, dtype=np.float64)
    else:
        order_key = np.asarray(order_key, dtype=np.float64)
    ks, kd = order_key[src], order_key[dst]
    forward = (ks < kd) | ((ks == kd) & (src < dst))
    keep = ~in_cycle | forward
    return edges[keep], int((~keep).sum())
