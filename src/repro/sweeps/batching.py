"""Direction batching (angle-set aggregation).

Production sweep codes often cannot hold all ``k`` directions' state in
memory at once; they sweep *batches* of directions sequentially (e.g.
one octant at a time).  Scheduling-wise this costs concurrency: a batch
of ``b`` directions exposes only ``b`` fronts to pipeline, so batched
makespans are at least the unbatched one and the gap quantifies the
memory/performance trade-off (benchmark E23).

The same-processor constraint spans batches — every copy of a cell in
*any* batch runs on one processor — so the assignment is drawn once and
shared, exactly as a real code would pin cells to ranks for the whole
solve.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import random_cell_assignment
from repro.core.instance import SweepInstance
from repro.core.schedule import Schedule
from repro.heuristics.registry import get_algorithm
from repro.util.errors import ReproError
from repro.util.rng import as_rng, spawn_rngs

__all__ = ["direction_batches", "batched_schedule"]


def direction_batches(k: int, n_batches: int) -> list[np.ndarray]:
    """Split directions ``0..k-1`` into ``n_batches`` contiguous batches.

    Contiguity mirrors octant grouping for level-symmetric sets (their
    generation order groups sign octants together).
    """
    if not 1 <= n_batches <= k:
        raise ReproError(f"need 1 <= n_batches <= k={k}, got {n_batches}")
    bounds = np.linspace(0, k, n_batches + 1).astype(np.int64)
    return [
        np.arange(bounds[i], bounds[i + 1], dtype=np.int64)
        for i in range(n_batches)
    ]


def batched_schedule(
    inst: SweepInstance,
    m: int,
    n_batches: int,
    algorithm: str = "random_delay_priority",
    seed=None,
    assignment: np.ndarray | None = None,
) -> Schedule:
    """Schedule the instance as ``n_batches`` sequential direction batches.

    Each batch is scheduled independently (with the shared assignment)
    by the named algorithm; batch schedules run back to back.  Returns a
    feasible schedule of the *full* instance whose makespan is the sum
    of the per-batch makespans.
    """
    rng = as_rng(seed)
    if assignment is None:
        assignment = random_cell_assignment(inst.n_cells, m, rng)
    assignment = np.asarray(assignment, dtype=np.int64)
    algo = get_algorithm(algorithm)
    batches = direction_batches(inst.k, n_batches)
    batch_rngs = spawn_rngs(rng, len(batches))

    n = inst.n_cells
    start = np.empty(inst.n_tasks, dtype=np.int64)
    offset = 0
    for batch, batch_rng in zip(batches, batch_rngs):
        sub = SweepInstance(
            n,
            [inst.dags[i] for i in batch.tolist()],
            cell_graph_edges=inst.cell_graph_edges,
            name=f"{inst.name}_batch",
        )
        sub_sched = algo(sub, m, seed=batch_rng, assignment=assignment)
        for j, i in enumerate(batch.tolist()):
            start[i * n : (i + 1) * n] = sub_sched.start[j * n : (j + 1) * n] + offset
        offset += sub_sched.makespan

    return Schedule(
        instance=inst,
        m=m,
        start=start,
        assignment=assignment,
        meta={
            "algorithm": f"batched_{algorithm}",
            "n_batches": n_batches,
        },
    )
