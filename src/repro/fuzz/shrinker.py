"""Greedy case minimisation: keep only what the violation needs.

Given a failing ``(instance, m)`` pair and a predicate that re-runs the
failing check, the shrinker tries successively smaller variants and
keeps any reduction under which the violation persists:

1. drop whole directions (k shrinks toward 1);
2. drop blocks of cells — halves, then quarters, ... down to single
   cells — relabelling the survivors densely;
3. drop blocks of DAG edges the same way;
4. reduce the processor count (1, m/2, m-1).

Every accepted reduction restarts the pass list, so the result is a
local minimum: no single remaining direction, cell block, edge block, or
processor reduction can be removed without losing the bug.  The
predicate-evaluation budget caps worst-case work; shrinking is best
effort, never required for corpus entry.
"""

from __future__ import annotations

import numpy as np

from repro.core.dag import Dag
from repro.core.instance import SweepInstance

__all__ = ["shrink_case"]


def _relabel(edges: np.ndarray, new_id: np.ndarray) -> np.ndarray:
    """Map old cell ids through ``new_id`` and drop edges touching -1."""
    if edges.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    mapped = new_id[edges]
    keep = (mapped >= 0).all(axis=1)
    return mapped[keep].astype(np.int64)


def _without_cells(inst: SweepInstance, drop: np.ndarray) -> SweepInstance | None:
    """Remove the cells in ``drop`` (boolean mask), densely relabelled."""
    keep = ~drop
    n_new = int(keep.sum())
    if n_new < 1:
        return None
    new_id = np.full(inst.n_cells, -1, dtype=np.int64)
    new_id[keep] = np.arange(n_new)
    dags = [Dag(n_new, _relabel(g.edges, new_id)) for g in inst.dags]
    return SweepInstance(
        n_new,
        dags,
        cell_graph_edges=_relabel(inst.cell_graph_edges, new_id),
        name=inst.name + "#shrunk",
    )


def _without_direction(inst: SweepInstance, i: int) -> SweepInstance | None:
    if inst.k <= 1:
        return None
    dags = [g for j, g in enumerate(inst.dags) if j != i]
    return SweepInstance(
        inst.n_cells,
        dags,
        cell_graph_edges=inst.cell_graph_edges,
        name=inst.name + "#shrunk",
    )


def _without_edges(inst: SweepInstance, i: int, drop: np.ndarray) -> SweepInstance:
    dags = list(inst.dags)
    g = dags[i]
    dags[i] = Dag(g.n, g.edges[~drop])
    return SweepInstance(
        inst.n_cells,
        dags,
        cell_graph_edges=inst.cell_graph_edges,
        name=inst.name + "#shrunk",
    )


def _block_masks(size: int, chunk: int):
    """Boolean drop-masks covering ``size`` items in blocks of ``chunk``."""
    for lo in range(0, size, chunk):
        mask = np.zeros(size, dtype=bool)
        mask[lo : lo + chunk] = True
        yield mask


class _Budget:
    def __init__(self, max_evals: int):
        self.remaining = max_evals

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def shrink_case(
    inst: SweepInstance,
    m: int,
    fails,
    max_evals: int = 300,
) -> tuple[SweepInstance, int, int]:
    """Minimise a failing case.

    Parameters
    ----------
    inst, m:
        The failing case.  ``fails(inst, m) -> bool`` must return ``True``
        for it (and for any reduction that preserves the bug).
    fails:
        The violation predicate; called up to ``max_evals`` times.
    max_evals:
        Predicate-evaluation budget (shrinking stops when exhausted).

    Returns ``(instance, m, evals_used)`` for the smallest variant found.
    """
    budget = _Budget(max_evals)

    def still_fails(candidate: SweepInstance | None, cm: int) -> bool:
        if candidate is None or not budget.spend():
            return False
        try:
            return bool(fails(candidate, cm))
        except Exception:  # noqa: BLE001 — a crashing predicate keeps the parent
            return False

    progress = True
    while progress and budget.remaining > 0:
        progress = False

        # Pass 1: drop directions.
        i = 0
        while i < inst.k and inst.k > 1:
            candidate = _without_direction(inst, i)
            if still_fails(candidate, m):
                inst = candidate
                progress = True
            else:
                i += 1

        # Pass 2: drop cell blocks, coarse to fine.
        chunk = max(inst.n_cells // 2, 1)
        while chunk >= 1:
            changed = True
            while changed and inst.n_cells > 1:
                changed = False
                for mask in _block_masks(inst.n_cells, chunk):
                    if mask.all():
                        continue
                    candidate = _without_cells(inst, mask)
                    if still_fails(candidate, m):
                        inst = candidate
                        progress = changed = True
                        break
            if chunk == 1:
                break
            chunk //= 2

        # Pass 3: drop edge blocks per direction, coarse to fine.
        for i in range(inst.k):
            n_edges = inst.dags[i].num_edges
            chunk = max(n_edges // 2, 1)
            while n_edges and chunk >= 1:
                changed = True
                while changed:
                    changed = False
                    n_edges = inst.dags[i].num_edges
                    for mask in _block_masks(n_edges, chunk):
                        candidate = _without_edges(inst, i, mask)
                        if still_fails(candidate, m):
                            inst = candidate
                            progress = changed = True
                            break
                if chunk == 1:
                    break
                chunk //= 2

        # Pass 4: fewer processors.
        for cm in (1, m // 2, m - 1):
            if 0 < cm < m and still_fails(inst, cm):
                m = cm
                progress = True
                break

    return inst, m, max_evals - budget.remaining
