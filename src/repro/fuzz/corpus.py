"""Failure corpus: reproducible JSON records of every bug the fuzzer found.

Each corpus entry is one JSON file holding

* the generator **spec** (family + seed + m + params) that first
  produced the failure — always sufficient to regenerate the original
  case bit-for-bit;
* the first **violation** (oracle, algorithm, message) observed;
* optionally the **shrunken** instance (via
  :func:`repro.core.io.instance_to_jsonable`) and reduced processor
  count, when the shrinker managed to minimise the case.

Filenames are content-addressed (``<family>-<seed>-<digest>.json``) so
re-finding a known bug is idempotent: the fuzzer never writes the same
failure twice, and CI can fail on *any new file* appearing under
``corpus/``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.core.io import instance_from_jsonable, instance_to_jsonable
from repro.fuzz.differential import CaseResult, run_case, run_instance
from repro.fuzz.oracles import Violation
from repro.util.errors import ReproError

__all__ = [
    "CORPUS_FORMAT_VERSION",
    "entry_from_result",
    "entry_path",
    "save_entry",
    "load_entry",
    "iter_corpus",
    "replay_entry",
]

CORPUS_FORMAT_VERSION = 1


def entry_from_result(
    result: CaseResult,
    shrunk_instance=None,
    shrunk_m: int | None = None,
) -> dict:
    """Build a JSON-ready corpus entry from a failing case result."""
    if result.ok:
        raise ReproError("cannot build a corpus entry from a clean case")
    first = result.violations[0]
    entry = {
        "format_version": CORPUS_FORMAT_VERSION,
        "spec": dict(result.spec),
        "violations": [
            {"oracle": v.oracle, "algorithm": v.algorithm, "message": v.message}
            for v in result.violations
        ],
        "makespans": dict(result.makespans),
        "oracle": first.oracle,
        "algorithm": first.algorithm,
    }
    if shrunk_instance is not None:
        entry["shrunk"] = {
            "instance": instance_to_jsonable(shrunk_instance),
            "m": int(shrunk_m if shrunk_m is not None else result.spec.get("m", 2)),
        }
    return entry


def _digest(entry: dict) -> str:
    ident = json.dumps(
        {
            "spec": entry["spec"],
            "oracle": entry["oracle"],
            "algorithm": entry["algorithm"],
        },
        sort_keys=True,
    )
    return hashlib.sha256(ident.encode()).hexdigest()[:10]


def entry_path(corpus_dir, entry: dict) -> Path:
    """Deterministic content-addressed path for ``entry``."""
    spec = entry["spec"]
    name = f"{spec.get('family', 'raw')}-{spec.get('seed', 0)}-{_digest(entry)}.json"
    return Path(corpus_dir) / name


def save_entry(corpus_dir, entry: dict) -> Path:
    """Write ``entry`` under ``corpus_dir`` (created on demand).

    Returns the path; an already-present identical failure is not
    rewritten, keeping corpus timestamps stable for CI diffing.
    """
    path = entry_path(corpus_dir, entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not path.exists():
        path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_entry(path) -> dict:
    path = Path(path)
    if not path.exists():
        raise ReproError(f"corpus entry not found: {path}")
    try:
        entry = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt corpus entry {path}: {exc}") from None
    version = entry.get("format_version")
    if version != CORPUS_FORMAT_VERSION:
        raise ReproError(
            f"unsupported corpus format version {version!r} in {path} "
            f"(this build reads {CORPUS_FORMAT_VERSION})"
        )
    return entry


def iter_corpus(corpus_dir) -> list[Path]:
    """All corpus entry files, sorted for reproducible replay order."""
    root = Path(corpus_dir)
    if not root.is_dir():
        return []
    return sorted(root.glob("*.json"))


def replay_entry(entry: dict, algorithms: dict | None = None) -> CaseResult:
    """Re-run a corpus entry through the current differential battery.

    Prefers the shrunken instance when present (smaller and exact); falls
    back to regenerating from the spec.  Either way the return value says
    whether the historical bug still reproduces on today's code.
    """
    spec = entry.get("spec", {})
    shrunk = entry.get("shrunk")
    if shrunk is not None:
        inst = instance_from_jsonable(shrunk["instance"])
        return run_instance(
            inst,
            int(shrunk["m"]),
            int(spec.get("seed", 0)),
            algorithms=algorithms,
            spec=spec,
        )
    return run_case(spec, algorithms=algorithms)
