"""Differential execution: every registered scheduler vs. every oracle.

One fuzz case = one ``(instance, m)`` pair.  The runner executes every
algorithm in :data:`repro.heuristics.registry.ALGORITHMS` on the case and
cross-checks the results three ways:

1. **per-schedule oracles** — the full pack from
   :mod:`repro.fuzz.oracles` (feasibility, lower bounds, C1/C2
   consistency, ...);
2. **determinism** — an identical (instance, seed) pair must produce a
   bit-identical schedule on a second run;
3. **engine equivalence** — the heap, bucket (both internal paths), and
   vector list-scheduling engines must produce bit-identical
   schedules on the case, assigned and unassigned, with and without
   priorities;
4. **cross-engine anomalies** — the minimum makespan over all engines is
   an *upper bound on OPT* (every engine emits a feasible schedule), so
   a "provable" algorithm whose makespan exceeds its proven
   approximation ratio times that minimum has violated its own theorem.
   This is the differential trick: no single run can check an
   O(OPT·log²n) guarantee, but a population of independent feasible
   schedules can.

The proven ratios carry generous slack constants — the point is to catch
broken algorithms (10× regressions, quadratic blow-ups), not to litigate
the paper's constants on 30-cell instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.instance import SweepInstance
from repro.core.schedule import Schedule
from repro.fuzz.oracles import OracleContext, Violation, check_schedule
from repro.fuzz.spec import build_case, spec_label
from repro.heuristics.registry import ALGORITHMS

__all__ = [
    "CaseResult",
    "proven_ratio_bound",
    "run_schedulers",
    "run_instance",
    "run_case",
    "PROVABLE_ALGORITHMS",
]

#: Registry names whose makespan the paper bounds against OPT.
PROVABLE_ALGORITHMS = {
    "random_delay": "theorem1",
    "random_delay_priority": "theorem2",
    "improved_random_delay": "theorem3",
    "improved_random_delay_priority": "theorem3",
}

#: Multiplicative slack on the theory factors (they are O(·) statements;
#: the constants below were chosen ~4x above anything observed across
#: 10^4 fuzz cases so a triggered bound means a real regression).
_SLACK = 4.0


def proven_ratio_bound(algorithm: str, inst: SweepInstance, m: int) -> float | None:
    """Upper bound on ``makespan / OPT`` promised by the paper, with slack.

    Returns ``None`` for heuristics without a guarantee.  Theorems 1 and 2
    promise ``O(log^2 n)`` (n = task count here, a weakening that only
    loosens the check); Theorem 3 / Corollary 1 promise
    ``O(log m · log log log m)``, which we majorise by
    ``(log m + 2)(log log m + 2)`` to stay finite at small m.
    """
    theorem = PROVABLE_ALGORITHMS.get(algorithm)
    if theorem is None:
        return None
    if theorem in ("theorem1", "theorem2"):
        ln = math.log2(max(inst.n_tasks, 2))
        return _SLACK * (ln + 2.0) ** 2
    lm = math.log2(max(m, 2))
    llm = math.log2(lm + 2.0)
    return _SLACK * (lm + 2.0) * (llm + 2.0)


@dataclass
class CaseResult:
    """Everything the differential runner learned about one case."""

    spec: dict
    makespans: dict[str, int] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def best_makespan(self) -> int | None:
        return min(self.makespans.values()) if self.makespans else None

    def describe(self) -> str:
        head = spec_label(self.spec)
        if self.ok:
            return f"{head}: ok ({len(self.makespans)} engines)"
        lines = [f"{head}: {len(self.violations)} violation(s)"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


def run_schedulers(
    inst: SweepInstance,
    m: int,
    seed: int,
    algorithms: dict | None = None,
) -> tuple[dict[str, Schedule], list[Violation]]:
    """Run every algorithm once; crashes become ``crash`` violations."""
    algorithms = ALGORITHMS if algorithms is None else algorithms
    schedules: dict[str, Schedule] = {}
    violations: list[Violation] = []
    for name, fn in algorithms.items():
        try:
            schedules[name] = fn(inst, m, seed=seed)
        except Exception as exc:  # noqa: BLE001 — crashes are findings, not aborts
            violations.append(
                Violation("crash", name, f"{type(exc).__name__}: {exc}")
            )
    return schedules, violations


def _check_determinism(
    inst: SweepInstance,
    m: int,
    seed: int,
    schedules: dict[str, Schedule],
    algorithms: dict,
) -> list[Violation]:
    out = []
    for name, first in schedules.items():
        try:
            second = algorithms[name](inst, m, seed=seed)
        except Exception as exc:  # noqa: BLE001
            out.append(
                Violation(
                    "determinism", name,
                    f"second run crashed: {type(exc).__name__}: {exc}",
                )
            )
            continue
        if not np.array_equal(first.start, second.start) or not np.array_equal(
            first.assignment, second.assignment
        ):
            out.append(
                Violation(
                    "determinism", name,
                    f"two runs with seed={seed} differ "
                    f"(makespans {first.makespan} vs {second.makespan})",
                )
            )
    return out


def _check_engine_equivalence(
    inst: SweepInstance, m: int, seed: int
) -> list[Violation]:
    """Heap vs bucket (both internal paths) vs vector, bit-for-bit.

    Runs :func:`list_schedule` and :func:`list_schedule_unassigned` on the
    case with uniform and delayed-level priorities, forcing the bucket
    engine through both its sorted-pool and bucket-queue paths and the
    vector engine through its superstep kernel, and reports any
    deviation from the heap reference.
    """
    from repro.core import fast_scheduler as fs
    from repro.core.assignment import random_cell_assignment
    from repro.core.list_scheduler import list_schedule, list_schedule_unassigned
    from repro.core.random_delay import delayed_task_layers, draw_delays
    from repro.util.rng import as_rng

    out: list[Violation] = []
    rng = as_rng(seed)
    delays = draw_delays(inst.k, rng)
    assignment = random_cell_assignment(inst.n_cells, m, rng)
    gamma = delayed_task_layers(inst, delays)
    for pname, prio in (("uniform", None), ("delayed-level", gamma)):
        try:
            ref = list_schedule(inst, m, assignment, priority=prio, engine="heap")
            uref = list_schedule_unassigned(inst, m, priority=prio, engine="heap")
        except Exception as exc:  # noqa: BLE001 — heap crash is its own finding
            out.append(
                Violation(
                    "engine_equivalence", "heap",
                    f"crash on {pname} priorities: {type(exc).__name__}: {exc}",
                )
            )
            continue
        for label, engine, path in (
            ("bucket[bucket]", "bucket", "bucket"),
            ("bucket[pool]", "bucket", "pool"),
            ("vector", "vector", None),
        ):
            saved = fs._FORCE_PATH
            fs._FORCE_PATH = path
            try:
                got = list_schedule(
                    inst, m, assignment, priority=prio, engine=engine
                )
                ugot = list_schedule_unassigned(
                    inst, m, priority=prio, engine=engine
                )
            except Exception as exc:  # noqa: BLE001
                out.append(
                    Violation(
                        "engine_equivalence", label,
                        f"crash on {pname} priorities: "
                        f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            finally:
                fs._FORCE_PATH = saved
            if not np.array_equal(got.start, ref.start):
                out.append(
                    Violation(
                        "engine_equivalence", label,
                        f"assigned schedule differs from heap on {pname} "
                        f"priorities (makespans {got.makespan} vs "
                        f"{ref.makespan})",
                    )
                )
            if not np.array_equal(ugot.start, uref.start) or not np.array_equal(
                ugot.machine, uref.machine
            ):
                out.append(
                    Violation(
                        "engine_equivalence", label,
                        f"unassigned schedule differs from heap on {pname} "
                        f"priorities (makespans {ugot.makespan} vs "
                        f"{uref.makespan})",
                    )
                )
    return out


def run_instance(
    inst: SweepInstance,
    m: int,
    seed: int,
    algorithms: dict | None = None,
    check_determinism: bool = True,
    check_engines: bool = True,
    spec: dict | None = None,
) -> CaseResult:
    """Run the differential battery on an already-built ``(instance, m)``.

    This is the engine behind :func:`run_case`; the shrinker and corpus
    replay call it directly on instances that no spec can rebuild.
    """
    algorithms = ALGORITHMS if algorithms is None else algorithms
    result = CaseResult(
        spec=spec
        if spec is not None
        else {"family": "raw", "seed": seed, "m": m, "params": {}}
    )
    schedules, crash_violations = run_schedulers(inst, m, seed, algorithms)
    result.violations.extend(crash_violations)

    ctx = OracleContext(inst, m)
    for name, sched in schedules.items():
        result.makespans[name] = sched.makespan
        result.violations.extend(check_schedule(sched, algorithm=name, ctx=ctx))

    if check_determinism and schedules:
        result.violations.extend(
            _check_determinism(inst, m, seed, schedules, algorithms)
        )

    if check_engines:
        result.violations.extend(_check_engine_equivalence(inst, m, seed))

    # Cross-engine theory check: min makespan is a certified OPT upper bound.
    best = result.best_makespan
    if best is not None and best > 0:
        for name, ms in result.makespans.items():
            bound = proven_ratio_bound(name, inst, m)
            if bound is not None and ms > bound * best:
                result.violations.append(
                    Violation(
                        "theory_bound", name,
                        f"makespan {ms} > {bound:.1f} x best engine makespan "
                        f"{best} — exceeds the proven "
                        f"{PROVABLE_ALGORITHMS[name]} ratio (with slack)",
                    )
                )
    return result


def run_case(
    spec: dict,
    algorithms: dict | None = None,
    check_determinism: bool = True,
) -> CaseResult:
    """Execute one spec through the full differential battery."""
    try:
        inst, m = build_case(spec)
    except Exception as exc:  # noqa: BLE001
        result = CaseResult(spec=spec)
        result.violations.append(
            Violation("generator", "-", f"{type(exc).__name__}: {exc}")
        )
        return result
    return run_instance(
        inst,
        m,
        int(spec.get("seed", 0)),
        algorithms=algorithms,
        check_determinism=check_determinism,
        spec=spec,
    )
