"""Differential fuzzing and invariant oracles for the scheduler registry.

The subsystem has five moving parts, one module each:

* :mod:`repro.fuzz.spec` — seeded, JSON-serialisable adversarial case
  generators (degenerate, chain, wide, disconnected, heterogeneous,
  mesh, ... families);
* :mod:`repro.fuzz.oracles` — the invariant pack every schedule must
  pass (feasibility, same-processor, lower bounds, C1/C2 consistency);
* :mod:`repro.fuzz.differential` — runs every registered algorithm per
  case, checks determinism, and turns the population minimum makespan
  into an OPT upper bound for the paper's Theorem 1–3 ratio checks;
* :mod:`repro.fuzz.shrinker` — greedy minimisation of failing cases;
* :mod:`repro.fuzz.corpus` / :mod:`repro.fuzz.runner` — persistence of
  failures as reproducible JSON, campaign and replay orchestration.

CLI: ``python -m repro fuzz --seeds 200`` (see ``docs/testing.md``).
"""

from repro.fuzz.spec import CASE_FAMILIES, build_case, random_spec, spec_label
from repro.fuzz.oracles import ORACLES, OracleContext, Violation, check_schedule
from repro.fuzz.differential import (
    PROVABLE_ALGORITHMS,
    CaseResult,
    proven_ratio_bound,
    run_case,
    run_instance,
    run_schedulers,
)
from repro.fuzz.shrinker import shrink_case
from repro.fuzz.corpus import (
    CORPUS_FORMAT_VERSION,
    entry_from_result,
    entry_path,
    iter_corpus,
    load_entry,
    replay_entry,
    save_entry,
)
from repro.fuzz.runner import FuzzReport, replay_corpus, run_fuzz

__all__ = [
    "CASE_FAMILIES",
    "build_case",
    "random_spec",
    "spec_label",
    "ORACLES",
    "OracleContext",
    "Violation",
    "check_schedule",
    "PROVABLE_ALGORITHMS",
    "CaseResult",
    "proven_ratio_bound",
    "run_case",
    "run_instance",
    "run_schedulers",
    "shrink_case",
    "CORPUS_FORMAT_VERSION",
    "entry_from_result",
    "entry_path",
    "iter_corpus",
    "load_entry",
    "replay_entry",
    "save_entry",
    "FuzzReport",
    "replay_corpus",
    "run_fuzz",
]
