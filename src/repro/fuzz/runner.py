"""Fuzz-campaign orchestration: generate → check → shrink → persist.

:func:`run_fuzz` drives the whole loop under a seed-count and/or
wall-clock budget; :func:`replay_corpus` re-runs every persisted failure
against the current code (the corpus doubles as a regression suite).
Both return a :class:`FuzzReport` with everything the CLI prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.fuzz.corpus import (
    entry_from_result,
    iter_corpus,
    load_entry,
    replay_entry,
    save_entry,
)
from repro.fuzz.differential import CaseResult, run_case, run_instance
from repro.fuzz.shrinker import shrink_case
from repro.fuzz.spec import build_case, random_spec, spec_label
from repro.util.rng import as_rng

__all__ = ["FuzzReport", "run_fuzz", "replay_corpus"]


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign (or one corpus replay)."""

    mode: str
    cases_run: int = 0
    elapsed: float = 0.0
    failures: list[CaseResult] = field(default_factory=list)
    corpus_paths: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def n_violations(self) -> int:
        return sum(len(r.violations) for r in self.failures)

    def summary(self) -> str:
        verdict = "clean" if self.ok else (
            f"{len(self.failures)} failing case(s), "
            f"{self.n_violations} violation(s)"
        )
        out = (
            f"fuzz {self.mode}: {self.cases_run} case(s) in "
            f"{self.elapsed:.1f}s — {verdict}"
        )
        if self.corpus_paths:
            out += f"\nnew corpus entries: {len(self.corpus_paths)}"
            out += "".join(f"\n  {p}" for p in self.corpus_paths)
        return out


def _shrink_failure(
    result: CaseResult,
    algorithms: dict | None,
    shrink_budget: int,
):
    """Minimise a failing case against its first violation's oracle."""
    try:
        inst, m = build_case(result.spec)
    except Exception:  # noqa: BLE001 — generator bugs have nothing to shrink
        return None, None
    first = result.violations[0]
    seed = int(result.spec.get("seed", 0))
    # Re-checking determinism on every candidate doubles shrink cost;
    # only pay for it when determinism is the violation being chased.
    recheck_determinism = first.oracle == "determinism"

    def fails(candidate, cand_m) -> bool:
        r = run_instance(
            candidate,
            cand_m,
            seed,
            algorithms=algorithms,
            check_determinism=recheck_determinism,
        )
        return any(
            v.oracle == first.oracle and v.algorithm == first.algorithm
            for v in r.violations
        )

    if not fails(inst, m):  # flaky or environment-dependent: keep the spec only
        return None, None
    small_inst, small_m, _ = shrink_case(inst, m, fails, max_evals=shrink_budget)
    return small_inst, small_m


def run_fuzz(
    n_seeds: int | None = None,
    time_budget: float | None = None,
    seed: int = 0,
    corpus_dir=None,
    algorithms: dict | None = None,
    shrink: bool = True,
    shrink_budget: int = 300,
    check_determinism: bool = True,
    log=None,
) -> FuzzReport:
    """Run a fuzz campaign.

    Parameters
    ----------
    n_seeds:
        Number of cases to generate (default 100 when no time budget).
    time_budget:
        Wall-clock seconds; generation stops when either budget runs out.
        When only ``time_budget`` is given the case count is unbounded.
    seed:
        Root seed; the campaign is fully reproducible given it.
    corpus_dir:
        Where to persist failures (``None`` = don't persist).
    shrink:
        Minimise each failure before persisting it.
    log:
        Optional ``callable(str)`` for progress lines.
    """
    if n_seeds is None and time_budget is None:
        n_seeds = 100
    rng = as_rng(seed)
    report = FuzzReport(mode="campaign")
    t0 = time.monotonic()
    i = 0
    while True:
        if n_seeds is not None and i >= n_seeds:
            break
        if time_budget is not None and time.monotonic() - t0 >= time_budget:
            break
        spec = random_spec(rng, index=i)
        result = run_case(
            spec, algorithms=algorithms, check_determinism=check_determinism
        )
        if not result.ok:
            if log:
                log(result.describe())
            shrunk_inst = shrunk_m = None
            if shrink:
                shrunk_inst, shrunk_m = _shrink_failure(
                    result, algorithms, shrink_budget
                )
                if log and shrunk_inst is not None:
                    log(
                        f"  shrunk to n={shrunk_inst.n_cells}, "
                        f"k={shrunk_inst.k}, m={shrunk_m}"
                    )
            report.failures.append(result)
            if corpus_dir is not None:
                entry = entry_from_result(
                    result, shrunk_instance=shrunk_inst, shrunk_m=shrunk_m
                )
                report.corpus_paths.append(save_entry(corpus_dir, entry))
        elif log and (i + 1) % 50 == 0:
            log(f"  {i + 1} cases, all clean")
        i += 1
    report.cases_run = i
    report.elapsed = time.monotonic() - t0
    return report


def replay_corpus(
    corpus_dir,
    algorithms: dict | None = None,
    log=None,
) -> FuzzReport:
    """Re-run every corpus entry; failures = historical bugs still alive."""
    report = FuzzReport(mode="replay")
    t0 = time.monotonic()
    for path in iter_corpus(corpus_dir):
        entry = load_entry(path)
        result = replay_entry(entry, algorithms=algorithms)
        report.cases_run += 1
        if result.ok:
            if log:
                log(f"{path.name}: fixed ({spec_label(result.spec)})")
        else:
            if log:
                log(f"{path.name}: STILL FAILING\n" + result.describe())
            report.failures.append(result)
    report.elapsed = time.monotonic() - t0
    return report
