"""The oracle pack: every independent invariant a schedule must satisfy.

Each oracle is a pure function ``(schedule, ctx) -> list[str]`` returning
human-readable violation messages (empty list = clean).  The pack goes
beyond :func:`repro.core.schedule.validate_schedule`:

* ``feasibility`` — the validator itself (shape, capacity, precedence);
* ``same_processor`` — all k copies of every cell on one processor,
  recomputed from the task→processor map rather than trusted from the
  assignment array's by-construction guarantee;
* ``serial_bound`` — makespan ≤ n·k: a serial schedule is always
  feasible, so any scheduler worse than serial is broken;
* ``lower_bounds`` — makespan ≥ every lower bound in
  :mod:`repro.core.lower_bounds` (average load, k copies, critical path,
  and the Graham relaxation bound);
* ``comm_consistency`` — the C1/C2 numbers reported by
  :mod:`repro.analysis.metrics` must equal the ones computed by
  :mod:`repro.comm.cost`, the three accountings must satisfy the
  documented sandwich ``C2 ≤ rounds ≤ C1``, and
  :func:`repro.comm.simulator.estimate_wall_clock` must decompose as
  ``p·makespan + c·steps`` under every accounting mode.

:class:`OracleContext` caches the per-(instance, m) lower bounds so the
differential runner pays for the Graham relaxation once per case, not
once per algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import summarize_schedule
from repro.comm.cost import c2_cost, interprocessor_edges, per_step_send_counts
from repro.comm.rounds import rounds_cost
from repro.comm.simulator import CommModel, estimate_wall_clock
from repro.core.instance import SweepInstance
from repro.core.lower_bounds import (
    average_load_lb,
    copies_lb,
    critical_path_lb,
    graham_relaxation_lb,
)
from repro.core.schedule import Schedule, validate_schedule
from repro.util.errors import InvalidScheduleError

__all__ = ["Violation", "OracleContext", "ORACLES", "check_schedule"]


@dataclass(frozen=True)
class Violation:
    """One oracle failure: which check, which algorithm, what happened."""

    oracle: str
    algorithm: str
    message: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.algorithm}: {self.message}"


class OracleContext:
    """Per-(instance, m) precomputed facts shared by all oracle runs."""

    def __init__(self, inst: SweepInstance, m: int, with_graham: bool = True):
        self.inst = inst
        self.m = m
        self.avg_load_lb = average_load_lb(inst, m)
        self.copies_lb = copies_lb(inst)
        self.critical_path_lb = critical_path_lb(inst)
        self.graham_lb = graham_relaxation_lb(inst, m) if with_graham else 0

    @property
    def combined_lb(self) -> int:
        return max(
            self.avg_load_lb, self.copies_lb, self.critical_path_lb, self.graham_lb
        )


def _oracle_feasibility(s: Schedule, ctx: OracleContext) -> list[str]:
    try:
        validate_schedule(s)
    except InvalidScheduleError as exc:
        return [f"validate_schedule rejected the schedule: {exc}"]
    except Exception as exc:  # noqa: BLE001 — a crash in the validator is itself a bug
        return [f"validate_schedule crashed: {type(exc).__name__}: {exc}"]
    return []


def _oracle_same_processor(s: Schedule, ctx: OracleContext) -> list[str]:
    inst = s.instance
    msgs = []
    proc = np.asarray(s.task_proc())
    if proc.shape != (inst.n_tasks,):
        return [
            f"task_proc has shape {proc.shape}, expected ({inst.n_tasks},)"
        ]
    if inst.n_cells:
        by_copy = proc.reshape(inst.k, inst.n_cells)
        split = np.flatnonzero((by_copy != by_copy[0]).any(axis=0))
        if split.size:
            v = int(split[0])
            msgs.append(
                f"cell {v} runs on processors {sorted(set(by_copy[:, v].tolist()))} "
                f"across its {inst.k} copies (same-processor constraint)"
            )
        if proc.min() < 0 or proc.max() >= s.m:
            msgs.append(
                f"task processors lie in [{proc.min()}, {proc.max()}], "
                f"outside [0, {s.m})"
            )
    return msgs


def _oracle_serial_bound(s: Schedule, ctx: OracleContext) -> list[str]:
    n_tasks = s.instance.n_tasks
    if s.makespan > n_tasks:
        return [
            f"makespan {s.makespan} exceeds the serial schedule length "
            f"{n_tasks} — worse than running every task on one processor"
        ]
    return []


def _oracle_lower_bounds(s: Schedule, ctx: OracleContext) -> list[str]:
    msgs = []
    bounds = {
        "average-load nk/m": ctx.avg_load_lb,
        "k copies": ctx.copies_lb,
        "critical path": ctx.critical_path_lb,
        "Graham relaxation": ctx.graham_lb,
    }
    for name, lb in bounds.items():
        if s.makespan < lb:
            msgs.append(
                f"makespan {s.makespan} beats the {name} lower bound {lb} "
                f"— impossible for a feasible schedule"
            )
    return msgs


def _oracle_comm_consistency(s: Schedule, ctx: OracleContext) -> list[str]:
    msgs = []
    c1 = interprocessor_edges(s.instance, s.assignment)
    c2 = c2_cost(s)
    rounds = rounds_cost(s)
    summary = summarize_schedule(s)
    if summary.c1 != c1:
        msgs.append(
            f"metrics C1 {summary.c1} != comm C1 {c1} (analysis/comm disagree)"
        )
    if summary.c2 != c2:
        msgs.append(
            f"metrics C2 {summary.c2} != comm C2 {c2} (analysis/comm disagree)"
        )
    if not (c2 <= rounds <= c1):
        msgs.append(
            f"accounting sandwich violated: C2={c2}, rounds={rounds}, C1={c1} "
            f"(expected C2 <= rounds <= C1)"
        )
    if c2_cost(s, dedup=True) > c2:
        msgs.append("deduplicated C2 exceeds plain C2")
    steps = per_step_send_counts(s)
    if steps.shape != (s.makespan,):
        msgs.append(
            f"per-step send counts have shape {steps.shape}, "
            f"expected ({s.makespan},)"
        )
    elif int(steps.sum()) != c2:
        msgs.append(f"per-step send counts sum {int(steps.sum())} != C2 {c2}")
    # Wall-clock simulator must decompose exactly and order sensibly.
    p, c = 1.0, 0.25
    expected_steps = {"none": 0, "max_send": c2, "rounds": rounds, "total_edges": c1}
    totals = {}
    for mode, want in expected_steps.items():
        est = estimate_wall_clock(s, CommModel(p=p, c=c, accounting=mode))
        totals[mode] = est.total
        if est.comm_steps != want:
            msgs.append(
                f"simulator accounting {mode!r} counted {est.comm_steps} "
                f"comm steps, expected {want}"
            )
        if abs(est.total - (p * s.makespan + c * want)) > 1e-9:
            msgs.append(
                f"simulator total {est.total} != p*makespan + c*steps "
                f"under accounting {mode!r}"
            )
    if not (
        totals["none"] <= totals["max_send"] <= totals["rounds"]
        <= totals["total_edges"] + 1e-9
    ):
        msgs.append(f"wall-clock totals not monotone across accountings: {totals}")
    return msgs


#: name -> oracle callable (schedule, ctx) -> list of violation messages.
ORACLES = {
    "feasibility": _oracle_feasibility,
    "same_processor": _oracle_same_processor,
    "serial_bound": _oracle_serial_bound,
    "lower_bounds": _oracle_lower_bounds,
    "comm_consistency": _oracle_comm_consistency,
}


def check_schedule(
    s: Schedule,
    algorithm: str = "?",
    ctx: OracleContext | None = None,
    oracles: dict | None = None,
) -> list[Violation]:
    """Run the full oracle pack on one schedule.

    A crashing oracle is reported as a violation of that oracle rather
    than propagated — a fuzzer must never die on the case it just found.
    """
    if ctx is None:
        ctx = OracleContext(s.instance, s.m)
    out: list[Violation] = []
    for name, fn in (oracles or ORACLES).items():
        try:
            msgs = fn(s, ctx)
        except Exception as exc:  # noqa: BLE001
            msgs = [f"oracle crashed: {type(exc).__name__}: {exc}"]
        out.extend(Violation(name, algorithm, m) for m in msgs)
    return out
