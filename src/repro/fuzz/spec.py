"""Fuzz-case specs: seeded, JSON-serialisable instance descriptions.

A *spec* is a plain dict ``{"family": str, "seed": int, "m": int,
"params": {...}}`` that deterministically rebuilds one fuzz case — a
:class:`~repro.core.instance.SweepInstance` plus a processor count.
Specs, not pickled instances, are what the corpus persists: they stay
human-readable and survive refactors of the instance classes.

The case families deliberately cover the degenerate and adversarial
regimes the normal experiment grids never visit:

* ``single_cell`` — n = 1 with many directions (the same-processor
  constraint at its tightest: OPT = k exactly);
* ``single_direction`` — k = 1 random DAG (delays degenerate to 0);
* ``edgeless`` — no precedence at all (pure balls-into-bins);
* ``chain`` — identical / rotated / opposing chains (depth-dominated,
  the Lemma 2 worst case);
* ``wide_layer`` — depth-2 bipartite with high fan-out (width-dominated);
* ``disconnected`` — several components with no edges between them
  (per-direction random chains inside each component);
* ``heterogeneous`` — wildly different DAG density per direction: some
  directions dense layered graphs, some chains, some empty (the
  heterogeneous-cost regime: per-direction critical paths differ by
  orders of magnitude);
* ``random_dags`` — k independent random DAGs over a hidden topological
  order (the `tests/strategies.py` construction, numpy-only);
* ``family`` — one of the named :data:`repro.instances.INSTANCE_FAMILIES`;
* ``mesh`` — a real (small) generated mesh with geometric directions.

Processor counts are drawn adversarially too: m = 1, m far larger than
the task count, and ordinary mid-range values.
"""

from __future__ import annotations

import numpy as np

from repro.core.dag import Dag
from repro.core.instance import SweepInstance
from repro.instances.families import INSTANCE_FAMILIES, make_instance
from repro.util.errors import ReproError
from repro.util.rng import as_rng

__all__ = ["CASE_FAMILIES", "build_case", "random_spec", "spec_label"]


def _rng_for(spec: dict) -> np.random.Generator:
    return as_rng(int(spec.get("seed", 0)))


def _single_cell(seed: int, k: int = 4) -> SweepInstance:
    dags = [Dag(1, np.empty((0, 2), dtype=np.int64)) for _ in range(max(k, 1))]
    return SweepInstance(1, dags, name=f"fuzz_single_cell_k{k}")


def _single_direction(seed: int, n: int = 12) -> SweepInstance:
    rng = as_rng(seed)
    return SweepInstance(
        n, [_random_dag(rng, n)], name=f"fuzz_single_direction_n{n}"
    )


def _edgeless(seed: int, n: int = 9, k: int = 3) -> SweepInstance:
    empty = np.empty((0, 2), dtype=np.int64)
    dags = [Dag(n, empty) for _ in range(k)]
    return SweepInstance(n, dags, name=f"fuzz_edgeless_n{n}_k{k}")


def _chain(seed: int, n: int = 10, k: int = 3, variant: str = "identical") -> SweepInstance:
    inst = make_instance(
        {"identical": "identical_chains", "rotated": "rotated_chains",
         "opposing": "opposing_chains"}[variant],
        n=max(n, 2), k=k, seed=seed,
    )
    inst.name = f"fuzz_chain_{variant}_n{n}_k{k}"
    return inst


def _wide_layer(seed: int, n: int = 20, k: int = 3) -> SweepInstance:
    inst = make_instance("wide_shallow", n=max(n, 4), k=k, seed=seed)
    inst.name = f"fuzz_wide_layer_n{n}_k{k}"
    return inst


def _disconnected(seed: int, n: int = 12, k: int = 3, parts: int = 3) -> SweepInstance:
    """Several components; each direction chains each component in its own
    random order, so there is never an edge between components."""
    rng = as_rng(seed)
    parts = max(min(parts, n), 1)
    labels = np.arange(n, dtype=np.int64) % parts
    dags = []
    for _ in range(k):
        edges = []
        for c in range(parts):
            cells = np.flatnonzero(labels == c)
            order = rng.permutation(cells)
            if order.size > 1:
                edges.append(np.stack([order[:-1], order[1:]], axis=1))
        arr = (
            np.concatenate(edges, axis=0)
            if edges
            else np.empty((0, 2), dtype=np.int64)
        )
        dags.append(Dag(n, arr))
    return SweepInstance(n, dags, name=f"fuzz_disconnected_n{n}_p{parts}_k{k}")


def _heterogeneous(seed: int, n: int = 14, k: int = 4) -> SweepInstance:
    """Per-direction structure varies wildly: dense / chain / empty / sparse."""
    rng = as_rng(seed)
    dags = []
    kinds = ["dense", "chain", "empty", "sparse"]
    for i in range(k):
        kind = kinds[i % len(kinds)]
        if kind == "empty":
            dags.append(Dag(n, np.empty((0, 2), dtype=np.int64)))
        elif kind == "chain":
            order = rng.permutation(n).astype(np.int64)
            dags.append(Dag(n, np.stack([order[:-1], order[1:]], axis=1)))
        else:
            prob = 0.6 if kind == "dense" else 0.08
            dags.append(_random_dag(rng, n, edge_prob=prob))
    return SweepInstance(n, dags, name=f"fuzz_heterogeneous_n{n}_k{k}")


def _random_dag(rng: np.random.Generator, n: int, edge_prob: float = 0.25) -> Dag:
    """Random DAG over a hidden topological order (always acyclic)."""
    order = rng.permutation(n)
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    if n < 2:
        return Dag(n, np.empty((0, 2), dtype=np.int64))
    mask = rng.random((n, n)) < edge_prob
    u, v = np.nonzero(mask)
    fwd = rank[u] < rank[v]
    lo = np.where(fwd, u, v)
    hi = np.where(fwd, v, u)
    keep = rank[lo] < rank[hi]
    edges = np.unique(np.stack([lo[keep], hi[keep]], axis=1), axis=0)
    return Dag(n, edges.astype(np.int64))


def _random_dags(seed: int, n: int = 12, k: int = 3, edge_prob: float = 0.25) -> SweepInstance:
    rng = as_rng(seed)
    dags = [_random_dag(rng, n, edge_prob=edge_prob) for _ in range(k)]
    return SweepInstance(n, dags, name=f"fuzz_random_dags_n{n}_k{k}")


def _family(seed: int, family: str = "fork_join", n: int = 16, k: int = 3) -> SweepInstance:
    inst = make_instance(family, n=max(n, 4), k=k, seed=seed)
    inst.name = f"fuzz_family_{family}"
    return inst


def _mesh(seed: int, mesh: str = "square2d", cells: int = 40, k: int = 4) -> SweepInstance:
    from repro.mesh import make_mesh
    from repro.sweeps import build_instance, directions_for_mesh

    msh = make_mesh(mesh, target_cells=cells, seed=seed)
    inst = build_instance(msh, directions_for_mesh(msh.dim, k))
    inst.name = f"fuzz_mesh_{mesh}_c{msh.n_cells}_k{inst.k}"
    return inst


#: family name -> builder(seed, **params) -> SweepInstance
CASE_FAMILIES = {
    "single_cell": _single_cell,
    "single_direction": _single_direction,
    "edgeless": _edgeless,
    "chain": _chain,
    "wide_layer": _wide_layer,
    "disconnected": _disconnected,
    "heterogeneous": _heterogeneous,
    "random_dags": _random_dags,
    "family": _family,
    "mesh": _mesh,
}


def build_case(spec: dict) -> tuple[SweepInstance, int]:
    """Rebuild ``(instance, m)`` from a spec dict, deterministically."""
    try:
        family = spec["family"]
        builder = CASE_FAMILIES[family]
    except KeyError:
        known = ", ".join(CASE_FAMILIES)
        raise ReproError(
            f"unknown fuzz family {spec.get('family')!r}; known: {known}"
        ) from None
    params = dict(spec.get("params", {}))
    inst = builder(int(spec.get("seed", 0)), **params)
    m = int(spec.get("m", 2))
    if m <= 0:
        raise ReproError(f"spec processor count must be positive, got {m}")
    return inst, m


def spec_label(spec: dict) -> str:
    """Short human-readable identity of a spec (for logs and filenames)."""
    return f"{spec['family']}[seed={spec.get('seed', 0)},m={spec.get('m', 2)}]"


_FAMILY_NAMES = sorted(INSTANCE_FAMILIES)
_MESHES = ["square2d", "tetonly"]


def random_spec(rng, index: int = 0) -> dict:
    """Draw one random spec.

    ``index`` cycles through the family list so every family appears even
    in short runs; sizes and processor counts are drawn from ``rng``.
    Sizes stay small on purpose — the differential runner executes every
    registered algorithm (plus oracles) per case, and small adversarial
    instances shrink better than big ones.
    """
    rng = as_rng(rng)
    names = sorted(CASE_FAMILIES)
    family = names[index % len(names)]
    seed = int(rng.integers(0, 2**31 - 1))
    n = int(rng.integers(2, 33))
    k = int(rng.integers(1, 7))
    params: dict = {}
    if family == "single_cell":
        params = {"k": k}
    elif family == "single_direction":
        params = {"n": n}
    elif family == "edgeless":
        params = {"n": n, "k": k}
    elif family == "chain":
        params = {
            "n": n,
            "k": k,
            "variant": ["identical", "rotated", "opposing"][int(rng.integers(3))],
        }
    elif family == "wide_layer":
        params = {"n": max(n, 4), "k": k}
    elif family == "disconnected":
        params = {"n": n, "k": k, "parts": int(rng.integers(2, 5))}
    elif family == "heterogeneous":
        params = {"n": n, "k": max(k, 2)}
    elif family == "random_dags":
        params = {
            "n": n,
            "k": k,
            "edge_prob": round(float(rng.uniform(0.05, 0.6)), 3),
        }
    elif family == "family":
        params = {
            "family": _FAMILY_NAMES[int(rng.integers(len(_FAMILY_NAMES)))],
            "n": max(n, 8),
            "k": max(k, 2),
        }
    elif family == "mesh":
        params = {
            "mesh": _MESHES[int(rng.integers(len(_MESHES)))],
            "cells": int(rng.integers(20, 61)),
            "k": max(k, 2),
        }
    # Adversarial processor counts: serial, huge, and mid-range.
    m_choices = [1, 2, 3, 5, 8, 16, n * max(k, 1) + 3]
    m = int(m_choices[int(rng.integers(len(m_choices)))])
    return {"family": family, "seed": seed, "m": m, "params": params}
