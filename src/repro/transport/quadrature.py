"""Angular quadrature: direction sets paired with integration weights.

The S_n method approximates the angular integral of the flux by a
weighted sum over the quadrature directions,
``phi = sum_k w_k psi_k`` with ``sum_k w_k = 1`` (we normalise to 1
rather than 4*pi so the infinite-medium identity ``phi = q/(sigma_t -
sigma_s)`` holds without stray constants).

Level-symmetric sets use equal weights per direction — exact for the
flat and linear-in-angle moments the one-group solver needs; the same
choice applies to Fibonacci and 2-D fan sets, which are near-uniform by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sweeps.directions import (
    circle_directions,
    fibonacci_sphere,
    level_symmetric,
)
from repro.util.errors import ReproError

__all__ = ["Quadrature"]


@dataclass(frozen=True)
class Quadrature:
    """A direction set with normalised integration weights."""

    directions: np.ndarray  # (k, d) unit vectors
    weights: np.ndarray  # (k,), sums to 1

    def __post_init__(self):
        if self.directions.ndim != 2 or self.directions.shape[0] == 0:
            raise ReproError("quadrature needs at least one direction")
        if self.weights.shape != (self.directions.shape[0],):
            raise ReproError("one weight per direction required")
        if not np.isclose(self.weights.sum(), 1.0):
            raise ReproError(
                f"weights must sum to 1, got {self.weights.sum():.6f}"
            )
        if np.any(self.weights <= 0):
            raise ReproError("weights must be positive")

    @property
    def k(self) -> int:
        return int(self.directions.shape[0])

    @property
    def dim(self) -> int:
        return int(self.directions.shape[1])

    @classmethod
    def equal_weight(cls, directions: np.ndarray) -> "Quadrature":
        """Equal weights over any direction set."""
        directions = np.asarray(directions, dtype=np.float64)
        k = directions.shape[0]
        return cls(directions, np.full(k, 1.0 / k))

    @classmethod
    def sn(cls, order: int) -> "Quadrature":
        """Equal-weight S_n level-symmetric quadrature (3-D)."""
        return cls.equal_weight(level_symmetric(order))

    @classmethod
    def fib(cls, k: int) -> "Quadrature":
        """Equal-weight Fibonacci-sphere quadrature (3-D, any k)."""
        return cls.equal_weight(fibonacci_sphere(k))

    @classmethod
    def fan2d(cls, k: int) -> "Quadrature":
        """Equal-weight 2-D fan quadrature."""
        return cls.equal_weight(circle_directions(k))

    def first_moment(self) -> np.ndarray:
        """The quadrature's net current of an isotropic field: should be
        ~0 for a symmetric set (used as a quality check)."""
        return self.weights @ self.directions
