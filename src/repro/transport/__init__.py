"""Discrete-ordinates transport solver — the application the schedules
serve.  One-group, isotropic scattering, upwind finite volume, with the
source-iteration outer loop; executes sweeps in schedule order."""

from repro.transport.quadrature import Quadrature
from repro.transport.sweep_solver import (
    TransportProblem,
    DirectionGeometry,
    WhiteBoundary,
    build_geometry,
    sweep_direction,
    sweep_all,
    schedule_orders,
    direction_balance,
)
from repro.transport.source_iteration import SolveResult, solve, solve_with_schedule
from repro.transport.krylov import (
    KrylovResult,
    solve_krylov,
    solve_krylov_with_schedule,
    si_vs_krylov_sweeps,
)
from repro.transport.multigroup import (
    MultigroupProblem,
    MultigroupResult,
    solve_multigroup,
    solve_multigroup_with_schedule,
)
from repro.transport.dsa import (
    DsaResult,
    assemble_diffusion_matrix,
    solve_dsa,
    solve_dsa_with_schedule,
)
from repro.transport.verification import manufactured_emission, verify_sweep

__all__ = [
    "KrylovResult",
    "solve_krylov",
    "solve_krylov_with_schedule",
    "si_vs_krylov_sweeps",
    "MultigroupProblem",
    "MultigroupResult",
    "solve_multigroup",
    "solve_multigroup_with_schedule",
    "DsaResult",
    "assemble_diffusion_matrix",
    "solve_dsa",
    "solve_dsa_with_schedule",
    "manufactured_emission",
    "verify_sweep",
    "Quadrature",
    "TransportProblem",
    "DirectionGeometry",
    "WhiteBoundary",
    "build_geometry",
    "sweep_direction",
    "sweep_all",
    "schedule_orders",
    "direction_balance",
    "SolveResult",
    "solve",
    "solve_with_schedule",
]
