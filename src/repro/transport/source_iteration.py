"""Source iteration: the outer loop that repeats sweeps to convergence.

S_n codes resolve scattering by iterating: sweep all directions with the
current scattering source, recompute the scalar flux, repeat.  The
spectral radius is ~``sigma_s / sigma_t`` (scattering ratio), so
scattering-dominated problems need many sweeps — which is why sweep
*schedule* quality multiplies and motivates the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.schedule import Schedule
from repro.transport.sweep_solver import (
    TransportProblem,
    build_geometry,
    schedule_orders,
    sweep_all,
)
from repro.util.errors import ReproError

__all__ = ["SolveResult", "solve", "solve_with_schedule"]


@dataclass
class SolveResult:
    """Converged (or iteration-capped) transport solution."""

    phi: np.ndarray  # (n,) scalar flux
    psi: np.ndarray  # (n, k) angular flux of the final sweep
    iterations: int
    converged: bool
    residual_history: list = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else 0.0


def solve(
    problem: TransportProblem,
    orders: list[np.ndarray],
    tol: float = 1e-8,
    max_iterations: int = 500,
) -> SolveResult:
    """Run source iteration with the given per-direction cell orders.

    Convergence: relative infinity-norm change of the scalar flux below
    ``tol``.
    """
    if tol <= 0 or max_iterations <= 0:
        raise ReproError("tol and max_iterations must be positive")
    geos, white = build_geometry(problem, orders)
    phi = np.zeros(problem.mesh.n_cells)
    psi = None
    history = []
    for it in range(1, max_iterations + 1):
        new_phi, psi = sweep_all(problem, phi, geos, white, psi)
        scale = float(np.abs(new_phi).max()) or 1.0
        residual = float(np.abs(new_phi - phi).max()) / scale
        history.append(residual)
        phi = new_phi
        if residual < tol:
            return SolveResult(phi, psi, it, True, history)
    return SolveResult(phi, psi, max_iterations, False, history)


def solve_with_schedule(
    problem: TransportProblem,
    schedule: Schedule,
    tol: float = 1e-8,
    max_iterations: int = 500,
) -> SolveResult:
    """Source iteration executing cells in the schedule's order.

    The schedule must belong to an instance built from the same mesh and
    direction set (same n, same k); an infeasible order trips the
    solver's unset-upwind check.
    """
    inst = schedule.instance
    if inst.n_cells != problem.mesh.n_cells or inst.k != problem.quadrature.k:
        raise ReproError(
            "schedule instance does not match the transport problem "
            f"(cells {inst.n_cells} vs {problem.mesh.n_cells}, "
            f"k {inst.k} vs {problem.quadrature.k})"
        )
    return solve(problem, schedule_orders(schedule), tol, max_iterations)
