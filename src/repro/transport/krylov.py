"""Krylov-accelerated transport: GMRES instead of source iteration.

Source iteration's spectral radius is the scattering ratio
``c = sigma_s/sigma_t`` — near-unity scattering means hundreds of
sweeps.  Production S_n codes therefore wrap the sweep in a Krylov
solver: writing the sweep (given an emission density) as the linear map
``L⁻¹``, the transport fixed point ``phi = D L⁻¹ (S phi + q)`` becomes
the linear system

    (I - D L⁻¹ S) phi = D L⁻¹ q

whose matrix-vector product is *one full sweep* — exactly the operation
the schedules of this library order.  GMRES then converges in far fewer
sweeps than source iteration at high ``c``.

Restricted to vacuum boundaries: the white boundary's lagged reflection
makes the fixed-point operator iteration-dependent, which a stationary
Krylov operator cannot represent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse.linalg import LinearOperator, gmres

from repro.core.schedule import Schedule
from repro.transport.source_iteration import SolveResult
from repro.transport.sweep_solver import (
    TransportProblem,
    build_geometry,
    schedule_orders,
    sweep_direction,
)
from repro.util.errors import ReproError

__all__ = ["solve_krylov", "solve_krylov_with_schedule", "KrylovResult"]


@dataclass
class KrylovResult:
    """Converged GMRES transport solution, with sweep accounting."""

    phi: np.ndarray
    sweeps: int  # total full-mesh sweep applications (matvecs + rhs)
    converged: bool
    residual_history: list = field(default_factory=list)


def solve_krylov(
    problem: TransportProblem,
    orders: list[np.ndarray],
    tol: float = 1e-8,
    maxiter: int = 200,
    restart: int = 30,
) -> KrylovResult:
    """Solve the one-group transport problem with GMRES.

    Each operator application performs one sweep of every direction in
    the provided cell orders.
    """
    if problem.boundary != "vacuum":
        raise ReproError(
            "Krylov transport supports vacuum boundaries only "
            "(white reflection is iteration-lagged; use source iteration)"
        )
    if tol <= 0 or maxiter <= 0:
        raise ReproError("tol and maxiter must be positive")
    geos, _white = build_geometry(problem, orders)
    quad = problem.quadrature
    n = problem.mesh.n_cells
    counter = {"sweeps": 0}

    def apply_dl_inv(emission: np.ndarray) -> np.ndarray:
        counter["sweeps"] += 1
        phi = np.zeros(n)
        for i in range(quad.k):
            phi += quad.weights[i] * sweep_direction(problem, geos[i], emission)
        return phi

    b = apply_dl_inv(problem.source)

    def matvec(phi: np.ndarray) -> np.ndarray:
        return phi - apply_dl_inv(problem.sigma_s * phi)

    op = LinearOperator((n, n), matvec=matvec, dtype=np.float64)
    residuals: list[float] = []

    phi, info = gmres(
        op,
        b,
        rtol=tol,
        atol=0.0,
        maxiter=maxiter,
        restart=restart,
        callback=lambda r: residuals.append(float(r)),
        callback_type="pr_norm",
    )
    return KrylovResult(
        phi=phi,
        sweeps=counter["sweeps"],
        converged=(info == 0),
        residual_history=residuals,
    )


def solve_krylov_with_schedule(
    problem: TransportProblem,
    schedule: Schedule,
    tol: float = 1e-8,
    maxiter: int = 200,
) -> KrylovResult:
    """GMRES transport solve executing sweeps in the schedule's order."""
    inst = schedule.instance
    if inst.n_cells != problem.mesh.n_cells or inst.k != problem.quadrature.k:
        raise ReproError("schedule instance does not match the transport problem")
    return solve_krylov(problem, schedule_orders(schedule), tol=tol, maxiter=maxiter)


def si_vs_krylov_sweeps(
    problem: TransportProblem, schedule: Schedule, tol: float = 1e-8
) -> dict:
    """Head-to-head sweep counts: source iteration vs GMRES."""
    from repro.transport.source_iteration import solve_with_schedule

    si: SolveResult = solve_with_schedule(problem, schedule, tol=tol)
    kr = solve_krylov_with_schedule(problem, schedule, tol=tol)
    return {
        "si_sweeps": si.iterations,
        "krylov_sweeps": kr.sweeps,
        "si_converged": si.converged,
        "krylov_converged": kr.converged,
        "max_diff": float(np.abs(si.phi - kr.phi).max()),
    }


__all__.append("si_vs_krylov_sweeps")
