"""Method of manufactured solutions (MMS) for the sweep solver.

The sharpest verification a discretised solver admits: pick an arbitrary
target angular flux ``psi*``, algebraically derive the per-cell source
that makes ``psi*`` the *exact* discrete solution, sweep, and compare to
round-off.  Any indexing, orientation, or coupling bug breaks the match.
Exposed as a public API so downstream changes to mesh generation or
scheduling can re-verify the whole chain in one call.
"""

from __future__ import annotations

import numpy as np

from repro.transport.sweep_solver import (
    DirectionGeometry,
    TransportProblem,
    build_geometry,
    sweep_direction,
)
from repro.util.errors import ReproError
from repro.util.rng import as_rng

__all__ = ["manufactured_emission", "verify_sweep"]


def manufactured_emission(
    problem: TransportProblem, geo: DirectionGeometry, psi_star: np.ndarray
) -> np.ndarray:
    """Emission density making ``psi_star`` the exact sweep solution.

    Inverts the per-cell balance: ``V_c q_c = removal_c psi*_c -
    sum_inflow coeff * psi*_upwind`` (vacuum boundary inflow = 0).
    """
    mesh = problem.mesh
    psi_star = np.asarray(psi_star, dtype=np.float64)
    if psi_star.shape != (mesh.n_cells,):
        raise ReproError("psi_star must have one value per cell")
    vol_q = geo.removal * psi_star
    down = np.repeat(
        np.arange(mesh.n_cells, dtype=np.int64), np.diff(geo.in_offsets)
    )
    np.subtract.at(vol_q, down, geo.in_coeffs * psi_star[geo.in_neighbors])
    return vol_q / mesh.cell_volumes


def verify_sweep(
    problem: TransportProblem,
    orders: list[np.ndarray],
    seed=0,
    directions: int | None = None,
) -> float:
    """Max |psi - psi*| over manufactured solutions for each direction.

    Draws a random positive target flux, manufactures its source, sweeps,
    and returns the worst absolute error across the tested directions
    (all by default).  Anything above ~1e-10 means a discretisation bug.
    """
    if problem.boundary != "vacuum":
        raise ReproError("MMS verification assumes vacuum boundaries")
    geos, _ = build_geometry(problem, orders)
    rng = as_rng(seed)
    n_dirs = problem.quadrature.k if directions is None else directions
    worst = 0.0
    for geo in geos[:n_dirs]:
        psi_star = rng.random(problem.mesh.n_cells) + 0.5
        emission = manufactured_emission(problem, geo, psi_star)
        psi = sweep_direction(problem, geo, emission)
        worst = max(worst, float(np.abs(psi - psi_star).max()))
    return worst
