"""Diffusion synthetic acceleration (DSA) for source iteration.

Source iteration attenuates only the error's transport modes; the slowly
converging diffusive modes (spectral radius ~ scattering ratio) are
exactly what a cheap diffusion solve captures.  DSA therefore follows
every transport sweep with a diffusion *correction*:

    sweep:      phi_half = D L^{-1} (sigma_s phi_l + q)
    diffusion:  (-div D grad + sigma_a) f = sigma_s (phi_half - phi_l)
    update:     phi_{l+1} = phi_half + f

with diffusion coefficient ``D = 1/(3 sigma_t)`` and absorption
``sigma_a = sigma_t - sigma_s``.  The classic result: iteration count
becomes nearly independent of the scattering ratio.

The diffusion operator is discretised with the two-point flux
approximation (TPFA) on the cell graph — for adjacent cells i, j sharing
a face of area A at centroid distance d, the coupling is
``A * D_harmonic / d`` — assembled as a scipy sparse SPD matrix and
solved with conjugate gradients.  Vacuum boundaries add a marshak-like
sink ``A/(4) ...``; we use the simple Robin coefficient ``A/2`` per
boundary face (standard half-range approximation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import coo_matrix, diags
from scipy.sparse.linalg import cg

from repro.core.schedule import Schedule
from repro.transport.sweep_solver import (
    TransportProblem,
    build_geometry,
    schedule_orders,
    sweep_all,
)
from repro.util.errors import ReproError

__all__ = ["assemble_diffusion_matrix", "solve_dsa", "solve_dsa_with_schedule",
           "DsaResult"]


def assemble_diffusion_matrix(problem: TransportProblem):
    """TPFA diffusion operator ``(-div D grad + sigma_a)`` as sparse CSR.

    Symmetric positive definite provided ``sigma_a > 0`` somewhere (true
    for any subcritical problem) or vacuum boundary sinks exist.
    """
    mesh = problem.mesh
    n = mesh.n_cells
    d_coef = 1.0 / (3.0 * problem.sigma_t)
    sigma_a = problem.sigma_t - problem.sigma_s

    rows, cols, vals = [], [], []
    diag = sigma_a * mesh.cell_volumes

    if mesh.n_faces:
        a = mesh.adjacency[:, 0]
        b = mesh.adjacency[:, 1]
        dist = np.linalg.norm(
            mesh.centroids[b] - mesh.centroids[a], axis=1
        )
        if np.any(dist <= 0):
            raise ReproError("coincident cell centroids break TPFA")
        # Harmonic mean of the two cells' diffusion coefficients.
        dh = 2.0 * d_coef[a] * d_coef[b] / (d_coef[a] + d_coef[b])
        coupling = mesh.face_areas * dh / dist
        rows.extend([a, b])
        cols.extend([b, a])
        vals.extend([-coupling, -coupling])
        np.add.at(diag, a, coupling)
        np.add.at(diag, b, coupling)

    if problem.boundary == "vacuum" and mesh.boundary_cells is not None:
        # Half-range (Marshak-like) Robin sink: A/2 per boundary face.
        np.add.at(diag, mesh.boundary_cells, mesh.boundary_areas / 2.0)

    rows.append(np.arange(n))
    cols.append(np.arange(n))
    vals.append(diag)
    mat = coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    ).tocsr()
    return mat


@dataclass
class DsaResult:
    """Converged DSA-accelerated solution."""

    phi: np.ndarray
    iterations: int
    converged: bool
    residual_history: list = field(default_factory=list)


def solve_dsa(
    problem: TransportProblem,
    orders: list[np.ndarray],
    tol: float = 1e-8,
    max_iterations: int = 200,
) -> DsaResult:
    """DSA-accelerated source iteration (vacuum boundaries).

    Each iteration costs one full set of scheduled sweeps plus one
    sparse CG solve on the cell graph (negligible next to the sweeps).
    """
    if problem.boundary != "vacuum":
        raise ReproError(
            "DSA is implemented for vacuum boundaries "
            "(the white boundary's lagged reflection breaks the two-level "
            "error analysis)"
        )
    if tol <= 0 or max_iterations <= 0:
        raise ReproError("tol and max_iterations must be positive")
    geos, white = build_geometry(problem, orders)
    diffusion = assemble_diffusion_matrix(problem)
    mesh = problem.mesh
    phi = np.zeros(mesh.n_cells)
    history = []
    for it in range(1, max_iterations + 1):
        phi_half, _psi = sweep_all(problem, phi, geos, white, None)
        # Diffusion correction of the scattering-source lag.
        rhs = problem.sigma_s * (phi_half - phi) * mesh.cell_volumes
        f, info = cg(diffusion, rhs, rtol=1e-10, atol=0.0)
        if info != 0:
            raise ReproError(f"diffusion CG failed to converge (info={info})")
        new_phi = phi_half + f
        scale = float(np.abs(new_phi).max()) or 1.0
        residual = float(np.abs(new_phi - phi).max()) / scale
        history.append(residual)
        phi = new_phi
        if residual < tol:
            return DsaResult(phi, it, True, history)
    return DsaResult(phi, max_iterations, False, history)


def solve_dsa_with_schedule(
    problem: TransportProblem,
    schedule: Schedule,
    tol: float = 1e-8,
    max_iterations: int = 200,
) -> DsaResult:
    """DSA solve executing sweeps in the schedule's order."""
    inst = schedule.instance
    if inst.n_cells != problem.mesh.n_cells or inst.k != problem.quadrature.k:
        raise ReproError("schedule instance does not match the transport problem")
    return solve_dsa(problem, schedule_orders(schedule), tol=tol,
                     max_iterations=max_iterations)
