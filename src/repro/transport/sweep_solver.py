"""One-group discrete-ordinates sweep solver — the paper's application.

This is the operator the paper's schedules invert: the
"streaming-plus-collision" operator of S_n radiation transport.  For one
direction ``w`` the upwind finite-volume balance over cell ``c`` reads

    sum_f (w . n_f) A_f psi_f  +  sigma_t V_c psi_c  =  V_c Q_c

with the face flux ``psi_f`` taken from the upwind side: the neighbor's
value on inflow faces (``w . n_f < 0``), the cell's own value on outflow
faces.  Solving for ``psi_c``:

    psi_c = (V_c Q_c + sum_inflow |w.n_f| A_f psi_upwind)
            / (sigma_t V_c + sum_outflow |w.n_f| A_f)

Each cell therefore needs its upwind neighbors first — exactly the
per-direction DAG the scheduler orders.  The solver executes cells in
**schedule order** (sorted by the schedule's start times), which both
demonstrates and *verifies* schedule feasibility: an infeasible order
would read an unset upstream flux, which the solver detects.

Boundary conditions
-------------------
``"vacuum"``
    Zero incoming flux; outflow leaks.  The physical default.
``"white"``
    Isotropically reflecting: each boundary face re-emits its outgoing
    partial current evenly into the incoming hemisphere (flux lagged one
    source iteration, the standard treatment).  Because every closed
    cell satisfies ``sum_f (w.n_f) A_f = 0`` exactly, a white boundary
    with a symmetric quadrature preserves the infinite-medium fixed
    point ``phi = q / (sigma_t - sigma_s)`` **exactly** on any mesh —
    the analytic anchor the test-suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Schedule
from repro.mesh.mesh import Mesh
from repro.transport.quadrature import Quadrature
from repro.util.errors import ReproError

__all__ = [
    "TransportProblem",
    "DirectionGeometry",
    "WhiteBoundary",
    "build_geometry",
    "sweep_direction",
    "sweep_all",
    "schedule_orders",
    "direction_balance",
]

#: Faces with |w.n| below this carry no flux for that direction.
_FLUX_TOL = 1e-14


@dataclass
class TransportProblem:
    """One-group, isotropic-scattering transport problem on a mesh.

    Attributes
    ----------
    mesh:
        Must carry geometry (``face_areas``, ``cell_volumes``,
        boundary-face arrays).
    quadrature:
        Direction set + weights.
    sigma_t, sigma_s:
        Total and scattering macroscopic cross sections (per cell or
        scalar); ``0 <= sigma_s < sigma_t`` required for stability.
    source:
        Volumetric external source ``q`` (per cell or scalar).
    boundary:
        ``"vacuum"`` or ``"white"`` (see module docs).
    """

    mesh: Mesh
    quadrature: Quadrature
    sigma_t: np.ndarray
    sigma_s: np.ndarray
    source: np.ndarray
    boundary: str = "vacuum"

    def __post_init__(self):
        mesh = self.mesh
        if mesh.face_areas is None or mesh.cell_volumes is None:
            raise ReproError(
                "transport needs mesh geometry (face_areas, cell_volumes); "
                "abstract meshes cannot be solved"
            )
        if mesh.boundary_cells is None:
            raise ReproError("transport needs mesh boundary-face data")
        if self.boundary not in ("vacuum", "white"):
            raise ReproError(f"unknown boundary condition {self.boundary!r}")
        if self.quadrature.dim != mesh.dim:
            raise ReproError(
                f"quadrature dimension {self.quadrature.dim} does not match "
                f"mesh dimension {mesh.dim}"
            )
        n = mesh.n_cells
        self.sigma_t = np.broadcast_to(
            np.asarray(self.sigma_t, dtype=np.float64), (n,)
        ).copy()
        self.sigma_s = np.broadcast_to(
            np.asarray(self.sigma_s, dtype=np.float64), (n,)
        ).copy()
        self.source = np.broadcast_to(
            np.asarray(self.source, dtype=np.float64), (n,)
        ).copy()
        if np.any(self.sigma_t <= 0):
            raise ReproError("sigma_t must be positive everywhere")
        if np.any(self.sigma_s < 0) or np.any(self.sigma_s >= self.sigma_t):
            raise ReproError("need 0 <= sigma_s < sigma_t for a stable solve")


@dataclass
class DirectionGeometry:
    """Precomputed upwind structure of one direction (reused each sweep).

    ``order`` is the cell execution order; ``in_*`` give each cell's
    interior inflow faces as CSR (upwind neighbor + coupling
    ``|w.n| A``); ``removal`` is the full denominator
    ``sigma_t V + sum_outflow |w.n| A`` (boundary outflow included);
    ``bin_faces`` / ``bin_cells`` / ``bin_coeffs`` are the *boundary*
    inflow faces of this direction; ``bout_*`` its boundary outflow.
    """

    order: np.ndarray
    in_offsets: np.ndarray
    in_neighbors: np.ndarray
    in_coeffs: np.ndarray
    removal: np.ndarray
    bin_faces: np.ndarray
    bin_cells: np.ndarray
    bin_coeffs: np.ndarray
    bout_cells: np.ndarray
    bout_coeffs: np.ndarray


@dataclass
class WhiteBoundary:
    """Per-face reflection bookkeeping for the white boundary.

    ``out_weight[b, j] = w_j (omega_j . n_b)+ A_b`` turns the per-cell
    angular fluxes into each face's outgoing partial current;
    ``in_norm[b]`` is the incoming-hemisphere normalisation
    ``sum_j w_j (omega_j . n_b)- A_b``, so re-emitted incoming flux is
    ``J_out / in_norm`` (isotropic over the incoming hemisphere).
    """

    out_weight: np.ndarray  # (B, k)
    in_norm: np.ndarray  # (B,)


def build_geometry(
    problem: TransportProblem, orders: list[np.ndarray]
) -> tuple[list[DirectionGeometry], WhiteBoundary | None]:
    """Precompute per-direction sweep structure (and reflection data)."""
    quad = problem.quadrature
    if len(orders) != quad.k:
        raise ReproError(
            f"need one cell order per direction ({quad.k}), got {len(orders)}"
        )
    geos = [
        _direction_geometry(problem, quad.directions[i], orders[i])
        for i in range(quad.k)
    ]
    white = _white_boundary(problem) if problem.boundary == "white" else None
    return geos, white


def _direction_geometry(
    problem: TransportProblem, direction: np.ndarray, order: np.ndarray
) -> DirectionGeometry:
    mesh = problem.mesh
    n = mesh.n_cells
    w = np.asarray(direction, dtype=np.float64)
    order = np.asarray(order, dtype=np.int64)
    if sorted(order.tolist()) != list(range(n)):
        raise ReproError("cell order must be a permutation of all cells")

    dots = mesh.face_normals @ w  # oriented adjacency[:,0] -> adjacency[:,1]
    coeff = np.abs(dots) * mesh.face_areas
    a, b = mesh.adjacency[:, 0], mesh.adjacency[:, 1]
    fwd = dots > 0  # flux flows a -> b
    down = np.where(fwd, b, a)
    up = np.where(fwd, a, b)
    active = np.abs(dots) > _FLUX_TOL
    down, up, c = down[active], up[active], coeff[active]

    # Inflow CSR keyed by the downwind cell.
    sort = np.argsort(down, kind="stable")
    down_s, up_s, c_s = down[sort], up[sort], c[sort]
    counts = np.bincount(down_s, minlength=n)
    offsets = np.empty(n + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(counts, out=offsets[1:])

    # Removal: sigma_t V plus all outflow couplings (interior + boundary).
    removal = problem.sigma_t * mesh.cell_volumes
    np.add.at(removal, up_s, c_s)

    bdots = mesh.boundary_normals @ w
    bcoeff = np.abs(bdots) * mesh.boundary_areas
    out = bdots > _FLUX_TOL
    inn = bdots < -_FLUX_TOL
    np.add.at(removal, mesh.boundary_cells[out], bcoeff[out])

    return DirectionGeometry(
        order=order,
        in_offsets=offsets,
        in_neighbors=up_s,
        in_coeffs=c_s,
        removal=removal,
        bin_faces=np.flatnonzero(inn),
        bin_cells=mesh.boundary_cells[inn],
        bin_coeffs=bcoeff[inn],
        bout_cells=mesh.boundary_cells[out],
        bout_coeffs=bcoeff[out],
    )


def _white_boundary(problem: TransportProblem) -> WhiteBoundary:
    mesh = problem.mesh
    quad = problem.quadrature
    # (B, k) directional projections of every boundary face.
    proj = mesh.boundary_normals @ quad.directions.T
    areas = mesh.boundary_areas[:, None]
    out_weight = np.clip(proj, 0.0, None) * areas * quad.weights[None, :]
    in_norm = (np.clip(-proj, 0.0, None) * areas * quad.weights[None, :]).sum(axis=1)
    return WhiteBoundary(out_weight=out_weight, in_norm=in_norm)


def sweep_direction(
    problem: TransportProblem,
    geo: DirectionGeometry,
    emission: np.ndarray,
    boundary_inflow: np.ndarray | None = None,
) -> np.ndarray:
    """One transport sweep of a single direction.

    ``emission`` is the isotropic emission density ``sigma_s phi + q``
    per cell; ``boundary_inflow`` an optional incoming angular flux per
    boundary face (vacuum when omitted).  Returns the angular flux.
    """
    mesh = problem.mesh
    vol_q = mesh.cell_volumes * emission
    if boundary_inflow is not None:
        # Fold boundary inflow into the per-cell numerator up front.
        vol_q = vol_q.copy()
        incoming = geo.bin_coeffs * boundary_inflow[geo.bin_faces]
        np.add.at(vol_q, geo.bin_cells, incoming)
    psi = np.full(mesh.n_cells, np.nan)
    off = geo.in_offsets
    nbr = geo.in_neighbors
    cf = geo.in_coeffs
    removal = geo.removal
    for c in geo.order.tolist():
        lo, hi = off[c], off[c + 1]
        inflow = 0.0
        if hi > lo:
            upstream = psi[nbr[lo:hi]]
            if np.isnan(upstream).any():
                raise ReproError(
                    f"sweep order visits cell {c} before an upwind neighbor "
                    "— infeasible schedule order"
                )
            inflow = float(cf[lo:hi] @ upstream)
        psi[c] = (vol_q[c] + inflow) / removal[c]
    return psi


def sweep_all(
    problem: TransportProblem,
    phi: np.ndarray,
    geos: list[DirectionGeometry],
    white: WhiteBoundary | None,
    psi_prev: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sweep every direction once; returns (new scalar flux, psi matrix).

    ``psi_prev`` is the (n, k) angular flux of the previous iteration,
    used only by the white boundary's lagged reflection.
    """
    quad = problem.quadrature
    mesh = problem.mesh
    emission = problem.sigma_s * phi + problem.source

    reflected = None
    if white is not None:
        if psi_prev is None:
            psi_prev = np.zeros((mesh.n_cells, quad.k))
        # Outgoing partial current per boundary face, then isotropic
        # re-emission into the incoming hemisphere.
        j_out = np.einsum("bk,bk->b", white.out_weight, psi_prev[mesh.boundary_cells])
        with np.errstate(invalid="ignore", divide="ignore"):
            reflected = np.where(white.in_norm > 0, j_out / white.in_norm, 0.0)

    psi_all = np.empty((mesh.n_cells, quad.k))
    for i in range(quad.k):
        inflow = reflected if white is not None else None
        psi_all[:, i] = sweep_direction(problem, geos[i], emission, inflow)
    new_phi = psi_all @ quad.weights
    return new_phi, psi_all


def schedule_orders(schedule: Schedule) -> list[np.ndarray]:
    """Per-direction cell execution orders implied by a sweep schedule."""
    inst = schedule.instance
    n = inst.n_cells
    orders = []
    for i in range(inst.k):
        starts = schedule.start[i * n : (i + 1) * n]
        orders.append(np.argsort(starts, kind="stable"))
    return orders


def direction_balance(
    problem: TransportProblem,
    geo: DirectionGeometry,
    emission: np.ndarray,
    psi: np.ndarray,
    boundary_inflow: np.ndarray | None = None,
) -> dict:
    """Global particle balance of one converged directional sweep.

    Returns source, collision (``sigma_t``-weighted), boundary leakage,
    and boundary inflow totals; discretisation conservation means
    ``source + inflow == collision + leakage`` to round-off (interior
    face fluxes cancel pairwise by construction).
    """
    mesh = problem.mesh
    source = float((mesh.cell_volumes * emission).sum())
    collision = float((problem.sigma_t * mesh.cell_volumes * psi).sum())
    leakage = float((geo.bout_coeffs * psi[geo.bout_cells]).sum())
    inflow = 0.0
    if boundary_inflow is not None:
        inflow = float((geo.bin_coeffs * boundary_inflow[geo.bin_faces]).sum())
    return {
        "source": source,
        "collision": collision,
        "leakage": leakage,
        "inflow": inflow,
    }
