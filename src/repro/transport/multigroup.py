"""Multigroup transport: the full workload shape of production sweeps.

Real S_n solves carry ``G`` energy groups; each outer pass sweeps every
(group, direction) pair — multiplying the sweep count the schedule
serves by ``G``.  One-group physics per group plus a group-to-group
scattering matrix:

    within group g:  sweep with emission  sigma_s[g,g] phi_g + Q_g
    group coupling:  Q_g = q_g + sum_{g' != g} sigma_s[g', g] phi_{g'}

Downscatter-only matrices (lower triangular in (g', g) with increasing
g) solve in a single Gauss–Seidel pass over groups; upscatter requires
outer iterations to a fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.schedule import Schedule
from repro.transport.quadrature import Quadrature
from repro.transport.source_iteration import solve
from repro.transport.sweep_solver import TransportProblem, schedule_orders
from repro.util.errors import ReproError

__all__ = ["MultigroupProblem", "MultigroupResult", "solve_multigroup",
           "solve_multigroup_with_schedule"]


@dataclass
class MultigroupProblem:
    """``G``-group isotropic-scattering problem on a mesh.

    Attributes
    ----------
    sigma_t:
        ``(G,)`` per-group total cross sections (scalars per group).
    scatter:
        ``(G, G)`` matrix; ``scatter[g_from, g_to]`` is the scattering
        cross section from group ``g_from`` into ``g_to``.  Row sums
        must stay below ``sigma_t[g_from]`` (subcritical medium).
    source:
        ``(G,)`` per-group volumetric sources.
    """

    mesh: object
    quadrature: Quadrature
    sigma_t: np.ndarray
    scatter: np.ndarray
    source: np.ndarray
    boundary: str = "vacuum"

    def __post_init__(self):
        self.sigma_t = np.asarray(self.sigma_t, dtype=np.float64)
        self.scatter = np.asarray(self.scatter, dtype=np.float64)
        self.source = np.asarray(self.source, dtype=np.float64)
        g = self.sigma_t.shape[0]
        if self.sigma_t.ndim != 1 or g == 0:
            raise ReproError("sigma_t must be a (G,) vector")
        if self.scatter.shape != (g, g):
            raise ReproError(f"scatter must be ({g}, {g})")
        if self.source.shape != (g,):
            raise ReproError(f"source must be ({g},)")
        if np.any(self.scatter < 0):
            raise ReproError("scattering cross sections must be nonnegative")
        if np.any(self.scatter.sum(axis=1) >= self.sigma_t):
            raise ReproError(
                "each group's total scattering must stay below sigma_t "
                "(subcritical medium)"
            )

    @property
    def n_groups(self) -> int:
        return int(self.sigma_t.shape[0])

    def has_upscatter(self) -> bool:
        """True if any energy flows to a lower group index."""
        return bool(np.any(np.tril(self.scatter, k=-1) > 0))


@dataclass
class MultigroupResult:
    phi: np.ndarray  # (G, n) per-group scalar flux
    outer_iterations: int
    total_sweeps: int  # full-mesh single-direction... group*source-iter sweeps
    converged: bool
    residual_history: list = field(default_factory=list)


def solve_multigroup(
    problem: MultigroupProblem,
    orders: list[np.ndarray],
    tol: float = 1e-8,
    max_outer: int = 100,
    inner_tol: float | None = None,
) -> MultigroupResult:
    """Gauss–Seidel over groups, source iteration within each group.

    Downscatter-only problems converge in one outer pass (plus one
    verification pass); upscatter iterates to the coupled fixed point.
    """
    if tol <= 0 or max_outer <= 0:
        raise ReproError("tol and max_outer must be positive")
    inner_tol = inner_tol or tol / 10
    g_count = problem.n_groups
    n = problem.mesh.n_cells
    phi = np.zeros((g_count, n))
    total_sweeps = 0
    history = []
    single_pass = not problem.has_upscatter()
    for outer in range(1, max_outer + 1):
        old = phi.copy()
        for g in range(g_count):
            # Group-coupled source from the freshest available fluxes.
            coupled = np.full(n, problem.source[g])
            for gp in range(g_count):
                if gp != g and problem.scatter[gp, g] > 0:
                    coupled = coupled + problem.scatter[gp, g] * phi[gp]
            group_problem = TransportProblem(
                problem.mesh,
                problem.quadrature,
                sigma_t=problem.sigma_t[g],
                sigma_s=problem.scatter[g, g],
                source=coupled,
                boundary=problem.boundary,
            )
            res = solve(group_problem, orders, tol=inner_tol)
            phi[g] = res.phi
            total_sweeps += res.iterations
        scale = float(np.abs(phi).max()) or 1.0
        residual = float(np.abs(phi - old).max()) / scale
        history.append(residual)
        if residual < tol or (single_pass and outer >= 2):
            return MultigroupResult(phi, outer, total_sweeps, True, history)
    return MultigroupResult(phi, max_outer, total_sweeps, False, history)


def solve_multigroup_with_schedule(
    problem: MultigroupProblem,
    schedule: Schedule,
    tol: float = 1e-8,
    max_outer: int = 100,
) -> MultigroupResult:
    """Multigroup solve executing sweeps in the schedule's order."""
    inst = schedule.instance
    if inst.n_cells != problem.mesh.n_cells or inst.k != problem.quadrature.k:
        raise ReproError("schedule instance does not match the transport problem")
    return solve_multigroup(problem, schedule_orders(schedule), tol=tol,
                            max_outer=max_outer)
