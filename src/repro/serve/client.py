"""Synchronous client for the scheduling daemon.

:class:`ServeClient` speaks the length-prefixed frame protocol over a
unix socket (or TCP) from ordinary blocking code — tests, the
``repro request`` command, and the ``--serve`` mode of
``repro campaign run``.  A single connection may pipeline many
requests: :meth:`schedule_many` writes every frame up front and then
matches responses by ``id`` as the daemon answers them (possibly out of
order, because the batcher holds compatible requests open across its
coalescing window).

Addresses are strings: a filesystem path selects a unix socket, the
form ``tcp:HOST:PORT`` selects TCP.
"""

from __future__ import annotations

import socket

from repro.analysis.metrics import ScheduleSummary
from repro.serve import protocol
from repro.util.errors import ServeError
from repro.util.timing import now

__all__ = ["ServeClient", "parse_address"]

#: Default poll interval while waiting for a daemon socket to appear.
_CONNECT_POLL_S = 0.05


def parse_address(address: str) -> tuple:
    """Split an address string into ``("unix", path)`` or ``("tcp", (host, port))``."""
    if address.startswith("tcp:"):
        rest = address[len("tcp:"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not port.isdigit():
            raise ServeError(
                protocol.E_BAD_REQUEST,
                f"TCP address must look like tcp:HOST:PORT, got {address!r}",
            )
        return ("tcp", (host or "127.0.0.1", int(port)))
    return ("unix", address)


def _connect(address: str, timeout: float | None) -> socket.socket:
    family, target = parse_address(address)
    if family == "tcp":
        sock = socket.create_connection(target, timeout=timeout)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(target)
    return sock


class ServeClient:
    """One blocking connection to a ``repro serve`` daemon."""

    def __init__(self, address: str, timeout: float | None = 60.0) -> None:
        self.address = address
        self._sock = _connect(address, timeout)
        self._next_id = 0

    @classmethod
    def wait_ready(
        cls, address: str, timeout: float = 30.0
    ) -> "ServeClient":
        """Connect, retrying until the daemon's socket accepts.

        Used right after spawning a daemon subprocess: the socket file
        appears only once the listener is up.
        """
        import time

        deadline = now() + timeout
        while True:
            try:
                return cls(address, timeout=timeout)
            except (FileNotFoundError, ConnectionError, OSError):
                if now() >= deadline:
                    raise
                time.sleep(_CONNECT_POLL_S)

    # -- request plumbing ----------------------------------------------

    def _make_request(self, kind: str, fields: dict) -> dict:
        self._next_id += 1
        payload = {
            "v": protocol.PROTOCOL_VERSION,
            "id": self._next_id,
            "kind": kind,
        }
        payload.update(fields)
        return payload

    def _read_response(self) -> dict:
        response = protocol.read_frame(self._sock)
        if response is None:
            raise ServeError(
                protocol.E_INTERNAL,
                "daemon closed the connection without answering "
                "(crashed or drained mid-request)",
            )
        return response

    @staticmethod
    def _unwrap(response: dict) -> dict:
        if not response.get("ok"):
            raise protocol.error_from_payload(response)
        return response["result"]

    def request(self, kind: str, **fields) -> dict:
        """One round trip: send a request, block for its result.

        Raises the daemon's typed refusal as :class:`ServeError`.
        """
        payload = self._make_request(kind, fields)
        protocol.write_frame(self._sock, payload)
        return self._unwrap(self._read_response())

    # -- request kinds -------------------------------------------------

    def schedule(
        self,
        instance: dict,
        algorithm: str,
        m: int,
        block_size: int,
        seed,
        engine: str = "auto",
        with_comm: bool = True,
        deadline_s: float | None = None,
    ) -> ScheduleSummary:
        """Run one grid cell on the daemon; returns its summary."""
        fields = {
            "instance": instance,
            "algorithm": algorithm,
            "m": m,
            "block_size": block_size,
            "seed": seed,
            "engine": engine,
            "with_comm": with_comm,
        }
        if deadline_s is not None:
            fields["deadline_s"] = deadline_s
        return ScheduleSummary(**self.request("schedule", **fields))

    def schedule_many(
        self, requests: list, on_error: str = "raise"
    ) -> list:
        """Pipeline many schedule requests over this one connection.

        ``requests`` is a list of field dicts (the ``schedule(...)``
        keyword arguments).  All frames are written before any response
        is read, so compatible requests land in one daemon batch.
        Results come back in submission order; a refused request either
        aborts the call (``on_error="raise"``) or takes its slot as the
        :class:`ServeError` itself (``on_error="return"``).
        """
        payloads = [self._make_request("schedule", r) for r in requests]
        for payload in payloads:
            protocol.write_frame(self._sock, payload)
        by_id: dict = {}
        want = {p["id"] for p in payloads}
        while want:
            response = self._read_response()
            rid = response.get("id")
            if rid in want:
                want.discard(rid)
                by_id[rid] = response
        results = []
        for payload in payloads:
            response = by_id[payload["id"]]
            if response.get("ok"):
                results.append(ScheduleSummary(**response["result"]))
            elif on_error == "return":
                results.append(protocol.error_from_payload(response))
            else:
                raise protocol.error_from_payload(response)
        return results

    def publish(
        self,
        instance: dict,
        block_sizes: list | tuple = (),
        algorithms: list | tuple = (),
        engine: str = "auto",
    ) -> dict:
        """Pre-publish an instance (and labellings) into the daemon."""
        return self.request(
            "publish",
            instance=instance,
            block_sizes=list(block_sizes),
            algorithms=list(algorithms),
            engine=engine,
        )

    def status(self) -> dict:
        """Daemon liveness/occupancy snapshot."""
        return self.request("status")

    def metrics(self) -> dict:
        """Registry counters plus the daemon's obs metrics snapshot."""
        return self.request("metrics")

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
