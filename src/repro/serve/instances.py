"""Resident-instance registry of the scheduling daemon.

The daemon's whole value is amortisation: an instance is published into
shared memory **once** and then serves thousands of schedule requests.
This module owns that residency:

* **Identity** — an instance is named by its content key
  (:func:`repro.cache.instance_key`), the same blake2b digest the
  on-disk build cache uses, so "resident in the daemon" and "cached on
  disk" are one identity.
* **Hydration** — a publish first consults :func:`repro.cache.load_arrays`;
  on a hit the wire-format arrays go straight into
  :meth:`~repro.parallel.shm_store.SharedInstanceStore.publish_arrays`
  without rehydrating per-direction ``Dag`` objects.  Only a cold miss
  pays mesh + DAG construction (which then also seeds the disk cache).
* **Pinned LRU eviction** — residency is byte-accounted against a
  budget; eviction walks least-recently-used entries but **never evicts
  an instance with in-flight requests** (``pins > 0``).  A request pins
  the concrete shared segment it dispatches against (a
  :class:`Lease`), so even a block-size republish that swaps the
  entry's segment keeps the old one alive until its last lease drains.

Gauges ``serve.instances.{hits,misses,evictions,resident_bytes}`` mirror
the registry counters onto the obs metrics plane.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro import obs
from repro.util.errors import ServeError

__all__ = ["InstanceSpec", "ResidentInstance", "Lease", "InstanceRegistry"]

#: Default residency budget: generous for test/CI meshes, small enough
#: that a runaway publisher hits backpressure before the host swaps.
DEFAULT_MAX_RESIDENT_BYTES = 512 * 1024 * 1024


@dataclass(frozen=True)
class InstanceSpec:
    """The mesh-derived instance a request runs against."""

    mesh: str
    target_cells: int
    mesh_seed: int
    k: int

    @classmethod
    def from_payload(cls, payload: dict) -> "InstanceSpec":
        """Build from a validated request's ``instance`` object."""
        return cls(
            mesh=payload["mesh"],
            target_cells=payload["target_cells"],
            mesh_seed=payload["mesh_seed"],
            k=payload["k"],
        )

    def content_key(self) -> str:
        """The blake2b identity shared with :mod:`repro.cache`."""
        from repro import cache as build_cache
        from repro.mesh.generators import mesh_dim
        from repro.sweeps.dag_builder import DEFAULT_TOL
        from repro.sweeps.directions import directions_for_mesh

        dirs = directions_for_mesh(mesh_dim(self.mesh), self.k)
        return build_cache.instance_key(
            self.mesh, self.target_cells, self.mesh_seed, self.k,
            DEFAULT_TOL, dirs,
        )

    def config(self, block_sizes: tuple = (1,), engine: str = "auto"):
        """An :class:`~repro.experiments.configs.ExperimentConfig` view."""
        from repro.experiments.configs import ExperimentConfig

        return ExperimentConfig(
            mesh=self.mesh,
            target_cells=self.target_cells,
            mesh_seed=self.mesh_seed,
            k=self.k,
            block_sizes=tuple(block_sizes) or (1,),
            engine=engine,
            name="serve",
        )


class _StoreHandle:
    """One published segment plus its in-flight lease count."""

    def __init__(self, store) -> None:
        self.store = store
        self.nbytes: int = store._shm.size
        self.pins: int = 0
        self.retired: bool = False

    @property
    def manifest(self):
        return self.store.manifest


@dataclass
class ResidentInstance:
    """One registry entry: identity, current segment, accounting."""

    key: str
    spec: InstanceSpec
    handle: _StoreHandle
    block_sizes: tuple = ()
    #: LRU clock tick of the last touch (monotonic per registry).
    seq: int = 0
    #: Sum of in-flight leases across current + retired segments.
    pins: int = 0
    #: Segments swapped out by a block-size republish but still leased.
    retired: list = field(default_factory=list)

    @property
    def manifest(self):
        return self.handle.manifest

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes + sum(h.nbytes for h in self.retired)


@dataclass
class Lease:
    """A pin on one concrete segment for one in-flight request batch.

    Holds the manifest the batch dispatched against; releasing the last
    lease of a retired segment closes it, and an entry with any live
    lease is immune to LRU eviction.
    """

    entry: ResidentInstance
    handle: _StoreHandle
    _registry: "InstanceRegistry"

    @property
    def manifest(self):
        return self.handle.manifest

    def release(self) -> None:
        self._registry._release(self)


class InstanceRegistry:
    """Byte-accounted, pin-aware LRU of daemon-resident instances.

    All methods are thread-safe: publishes run on the daemon's registry
    executor thread while pins/releases arrive from the event loop.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_RESIDENT_BYTES) -> None:
        self.max_bytes = max_bytes
        self._entries: dict[str, ResidentInstance] = {}
        self._lock = threading.Lock()
        self._clock = 0
        self.counters: dict[str, int] = {
            "hits": 0, "misses": 0, "evictions": 0,
        }

    # -- introspection -------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident_bytes_locked()

    def _resident_bytes_locked(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def evictable_bytes(self) -> int:
        """Bytes reclaimable right now (entries with zero leases)."""
        with self._lock:
            return sum(
                e.nbytes for e in self._entries.values() if e.pins == 0
            )

    def snapshot(self) -> dict:
        """Status view: per-entry occupancy plus the counters."""
        with self._lock:
            return {
                "resident_bytes": self._resident_bytes_locked(),
                "max_bytes": self.max_bytes,
                "counters": dict(self.counters),
                "instances": [
                    {
                        "key": e.key,
                        "mesh": e.spec.mesh,
                        "target_cells": e.spec.target_cells,
                        "k": e.spec.k,
                        "block_sizes": list(e.block_sizes),
                        "bytes": e.nbytes,
                        "pins": e.pins,
                    }
                    for e in sorted(
                        self._entries.values(), key=lambda e: -e.seq
                    )
                ],
            }

    # -- lease lifecycle -----------------------------------------------

    def pin(self, entry: ResidentInstance) -> Lease:
        """Pin the entry's current segment for one in-flight batch."""
        with self._lock:
            handle = entry.handle
            handle.pins += 1
            entry.pins += 1
            self._clock += 1
            entry.seq = self._clock
            return Lease(entry, handle, self)

    def _release(self, lease: Lease) -> None:
        close_store = None
        with self._lock:
            lease.handle.pins -= 1
            lease.entry.pins -= 1
            if lease.handle.retired and lease.handle.pins == 0:
                if lease.handle in lease.entry.retired:
                    lease.entry.retired.remove(lease.handle)
                close_store = lease.handle.store
            self._gauge_locked()
        if close_store is not None:
            close_store.close()

    # -- publish / lookup ----------------------------------------------

    def get_or_publish(
        self,
        spec: InstanceSpec,
        block_sizes: tuple = (),
        algorithms: tuple = (),
        engine: str = "auto",
    ) -> ResidentInstance:
        """Resident entry for ``spec`` covering ``block_sizes``.

        Registry hit: LRU-touch and return.  Hit missing a block
        labelling: republish the same instance arrays with the superset
        of labellings (segment swap; old segment lives until its leases
        drain).  Miss: hydrate from the disk cache or build, publish,
        then evict LRU unpinned entries down to the byte budget.
        """
        key = spec.content_key()
        needed = tuple(sorted({s for s in block_sizes if s > 1}))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and set(needed) <= set(entry.block_sizes):
                self.counters["hits"] += 1
                obs.inc("serve.instances.hits")
                self._clock += 1
                entry.seq = self._clock
                return entry

        if entry is not None:
            return self._extend_blocks(entry, needed, engine)
        return self._publish_new(spec, key, needed, algorithms, engine)

    def _publish_new(
        self, spec, key, block_sizes, algorithms, engine
    ) -> ResidentInstance:
        from repro.parallel.shm_store import SharedInstanceStore

        meta, arrays = _load_or_build_arrays(spec, algorithms, engine)
        blocks = _build_blocks(spec, block_sizes)
        store = SharedInstanceStore.publish_arrays(meta, arrays, blocks=blocks)
        entry = ResidentInstance(
            key=key, spec=spec, handle=_StoreHandle(store),
            block_sizes=block_sizes,
        )
        evicted: list = []
        with self._lock:
            raced = self._entries.get(key)
            if raced is not None:
                # Another publisher won while we built; keep theirs.
                store.close()
                self._clock += 1
                raced.seq = self._clock
                return raced
            self.counters["misses"] += 1
            obs.inc("serve.instances.misses")
            self._clock += 1
            entry.seq = self._clock
            self._entries[key] = entry
            evicted = self._evict_to_budget_locked(keep=entry)
            self._gauge_locked()
        for store_ in evicted:
            store_.close()
        return entry

    def _extend_blocks(self, entry, needed, engine) -> ResidentInstance:
        """Republish ``entry`` with the union of block labellings.

        The instance arrays are copied segment-to-segment (no rebuild);
        the old segment is retired and closed once its leases drain.
        """
        from repro.parallel.shm_store import SharedInstanceStore, _views

        union = tuple(sorted(set(entry.block_sizes) | set(needed)))
        blocks = _build_blocks(entry.spec, union)
        old = entry.handle
        manifest = old.manifest
        views = _views(manifest.specs, old.store._shm.buf, writeable=False)
        arrays = {
            k: v for k, v in views.items() if not k.startswith("blocks/")
        }
        store = SharedInstanceStore.publish_arrays(
            manifest.meta, arrays, blocks=blocks
        )
        close_old = None
        with self._lock:
            self.counters["hits"] += 1
            obs.inc("serve.instances.hits")
            entry.handle = _StoreHandle(store)
            entry.block_sizes = union
            self._clock += 1
            entry.seq = self._clock
            if old.pins == 0:
                close_old = old.store
            else:
                old.retired = True
                entry.retired.append(old)
            self._gauge_locked()
        if close_old is not None:
            close_old.close()
        return entry

    def _evict_to_budget_locked(self, keep=None) -> list:
        """Drop LRU zero-pin entries until under budget; returns stores.

        The entry being published (``keep``) is exempt — evicting what a
        request is about to use would thrash.  Entries with live leases
        are never candidates, so a saturated registry can legitimately
        sit over budget; admission sheds further publishes instead.
        """
        evicted = []
        while self._resident_bytes_locked() > self.max_bytes:
            candidates = [
                e for e in self._entries.values()
                if e.pins == 0 and not e.retired and e is not keep
            ]
            if not candidates:
                break
            victim = min(candidates, key=lambda e: e.seq)
            del self._entries[victim.key]
            evicted.append(victim.handle.store)
            self.counters["evictions"] += 1
            obs.inc("serve.instances.evictions")
        return evicted

    def _gauge_locked(self) -> None:
        obs.gauge(
            "serve.instances.resident_bytes", self._resident_bytes_locked()
        )

    def would_exceed_budget(self) -> bool:
        """True when a new publish cannot fit even after eviction.

        The admission plane's shedding predicate: every resident byte is
        pinned by in-flight work and the budget is already spent, so a
        publish now would only grow past the budget.
        """
        with self._lock:
            pinned = sum(
                e.nbytes for e in self._entries.values() if e.pins > 0
            )
            return pinned >= self.max_bytes

    def close_all(self) -> None:
        """Unlink every resident segment (drain path; zero orphans)."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
            self._gauge_locked()
        for entry in entries:
            if entry.pins:
                raise ServeError(
                    "internal",
                    f"close_all with {entry.pins} live leases on "
                    f"{entry.key[:12]} — drain must await in-flight "
                    "requests first",
                )
            entry.handle.store.close()
            for handle in entry.retired:
                handle.store.close()


def _load_or_build_arrays(
    spec: InstanceSpec, algorithms: tuple, engine: str
) -> tuple:
    """The instance wire payload: disk-cache hit or full build.

    On a hit the arrays are published as-is (no Dag rehydration).  On a
    miss the build goes through the memoised runner chokepoint — which
    also seeds the disk cache when enabled — and the live instance is
    warmed for ``algorithms``/``engine`` so attached workers inherit the
    expensive memo caches.
    """
    from repro import cache as build_cache

    key = spec.content_key()
    if build_cache.cache_dir() is not None:
        cached = build_cache.load_arrays(key)
        if cached is not None:
            return cached
    from repro.experiments import runner
    from repro.parallel.worker import warm_instance

    inst = runner.get_instance(spec.config(engine=engine))
    warm_instance(inst, algorithms, engine=engine)
    return inst.export_arrays()


def _build_blocks(spec: InstanceSpec, block_sizes: tuple) -> dict | None:
    """Cell→block labellings for every requested size > 1."""
    if not block_sizes:
        return None
    from repro.experiments import runner

    config = spec.config(block_sizes=block_sizes)
    return {
        size: runner.get_blocks(config, size)
        for size in block_sizes
    }
