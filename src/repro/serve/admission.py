"""Admission control, backpressure, and graceful drain for the daemon.

Every request passes through one :class:`AdmissionController` gate
before touching the registry or batcher:

* **Bounded pending queue** — at most ``max_pending`` schedule/publish
  requests may be in flight; excess arrivals are refused immediately
  with :data:`~repro.serve.protocol.E_OVERLOADED` and a ``retry_after``
  hint, so a saturated daemon degrades to fast refusals instead of
  unbounded queueing.
* **Deadlines** — a request carrying ``deadline_s`` gets an absolute
  monotonic deadline stamped at admission; expiry anywhere downstream
  (queued, batched, or raced by the result) yields
  :data:`~repro.serve.protocol.E_DEADLINE_EXCEEDED`, never a stale
  result.
* **Resident-byte budget** — ``publish`` work is shed with
  :data:`~repro.serve.protocol.E_RESIDENT_BUDGET` (+``retry_after``)
  when every resident byte is pinned by in-flight requests and the
  budget is spent; eviction cannot help until those drain.
* **Drain** — ``begin_drain`` flips the gate shut
  (:data:`~repro.serve.protocol.E_SHUTTING_DOWN` for new arrivals) and
  :meth:`wait_idle` lets the server finish in-flight requests before it
  unlinks segments and exits — the zero-orphan contract under
  ``SIGTERM``.
"""

from __future__ import annotations

import asyncio

from repro import obs
from repro.serve import protocol
from repro.serve.instances import InstanceRegistry
from repro.util.errors import ServeError
from repro.util.timing import now

__all__ = ["AdmissionController"]

#: Default bound on concurrently admitted schedule/publish requests.
DEFAULT_MAX_PENDING = 128

#: ``retry_after`` hint (seconds) sent with overload/budget refusals.
DEFAULT_RETRY_AFTER_S = 0.1


class AdmissionController:
    """The daemon's front gate: queue bound, deadlines, budget, drain."""

    def __init__(
        self,
        registry: InstanceRegistry,
        max_pending: int = DEFAULT_MAX_PENDING,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
    ) -> None:
        self.registry = registry
        self.max_pending = max(int(max_pending), 1)
        self.retry_after_s = retry_after_s
        self.pending = 0
        self.served = 0
        self.refused = 0
        self.draining = False
        self._idle = asyncio.Event()
        self._idle.set()

    # -- gate ----------------------------------------------------------

    def admit(self, kind: str) -> None:
        """Admit one ``schedule``/``publish`` request or refuse loudly.

        Raises :class:`ServeError` with the matching typed code; the
        caller must pair a successful admit with exactly one
        :meth:`release`.  ``status``/``metrics`` bypass the gate (they
        must work *especially* when the daemon is saturated/draining).
        """
        if self.draining:
            self.refused += 1
            obs.inc("serve.refused.shutting_down")
            raise ServeError(
                protocol.E_SHUTTING_DOWN,
                "daemon is draining (SIGTERM received); no new requests",
            )
        if self.pending >= self.max_pending:
            self.refused += 1
            obs.inc("serve.refused.overloaded")
            raise ServeError(
                protocol.E_OVERLOADED,
                f"pending queue full ({self.pending}/{self.max_pending})",
                retry_after=self.retry_after_s,
            )
        if kind == "publish" and self.registry.would_exceed_budget():
            self.refused += 1
            obs.inc("serve.refused.resident_budget")
            raise ServeError(
                protocol.E_RESIDENT_BUDGET,
                "resident-byte budget exhausted and every resident "
                "instance is pinned by in-flight requests; retry after "
                "they drain",
                retry_after=self.retry_after_s,
            )
        self.pending += 1
        self._idle.clear()

    def release(self) -> None:
        """Mark one admitted request as finished (success or failure)."""
        self.pending -= 1
        self.served += 1
        if self.pending <= 0:
            self._idle.set()

    # -- deadlines -----------------------------------------------------

    def stamp_deadline(self, deadline_s) -> float | None:
        """Absolute monotonic deadline from a request's ``deadline_s``."""
        if deadline_s is None:
            return None
        return now() + float(deadline_s)

    def check_deadline(self, deadline: float | None) -> None:
        """Refuse immediately if the deadline has already passed."""
        if deadline is not None and now() >= deadline:
            obs.inc("serve.deadline_exceeded")
            raise ServeError(
                protocol.E_DEADLINE_EXCEEDED,
                "deadline expired before the request could be scheduled",
            )

    # -- drain ---------------------------------------------------------

    def begin_drain(self) -> None:
        """Refuse new work from now on; in-flight requests finish."""
        self.draining = True

    async def wait_idle(self) -> None:
        """Block until every admitted request has been released."""
        await self._idle.wait()

    def snapshot(self) -> dict:
        return {
            "pending": self.pending,
            "max_pending": self.max_pending,
            "served": self.served,
            "refused": self.refused,
            "draining": self.draining,
        }
