"""The resident scheduling daemon: asyncio server wiring all the planes.

One :class:`ServeServer` owns the four serve components — protocol
framing, the pinned-LRU :class:`~repro.serve.instances.InstanceRegistry`,
the :class:`~repro.serve.admission.AdmissionController` gate, and the
coalescing :class:`~repro.serve.batcher.Batcher` over a resident
spawn-context worker pool — plus the process-level concerns: the unix
(or TCP) listener, the SIGTERM/SIGINT graceful drain, and the optional
trace export.

Request lifecycle (spans in parentheses)::

    frame in ──(serve.accept)── validate + admit + stamp deadline
             ──(registry executor thread)── get_or_publish + pin
             ──(serve.batch)── coalesce within the delay window
             ──(serve.dispatch)── one chunk on the resident pool
             ──(serve.reply)── frame out, admission release

Blocking work (instance builds, cache loads, pool startup) never runs
on the event loop: registry operations are serialised onto a dedicated
single-thread executor (lint rule RPL007 polices the coroutine bodies
in this package).

Drain contract: on ``SIGTERM`` the daemon stops accepting, finishes
every in-flight request, shuts the pool down, closes + unlinks every
shared segment, removes its socket file, and exits 0 — afterwards
``repro doctor`` (and the ``list_orphan_segments`` probe behind it)
must report zero orphans.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro import obs
from repro.serve import protocol
from repro.serve.admission import DEFAULT_MAX_PENDING, AdmissionController
from repro.serve.batcher import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_S,
    Batcher,
    BatchRequest,
)
from repro.serve.instances import (
    DEFAULT_MAX_RESIDENT_BYTES,
    InstanceRegistry,
    InstanceSpec,
)
from repro.util.errors import ReproError, ServeError

__all__ = ["ServeConfig", "ServeServer", "run_server"]

#: Printed (and flushed) once the daemon is accepting; tests and the CI
#: smoke job block on this line before sending the first request.
READY_LINE = "repro-serve: ready"


@dataclass
class ServeConfig:
    """Everything the daemon needs to come up."""

    #: Unix socket path (the default transport), or ``None`` with TCP.
    socket_path: str | None = None
    #: TCP ``(host, port)``; used only when ``socket_path`` is ``None``.
    tcp: tuple | None = None
    workers: int = 2
    max_pending: int = DEFAULT_MAX_PENDING
    max_delay_s: float = DEFAULT_MAX_DELAY_S
    max_batch: int = DEFAULT_MAX_BATCH
    max_resident_bytes: int = DEFAULT_MAX_RESIDENT_BYTES
    #: Write a merged Chrome trace here on drain (enables tracing).
    trace_path: str | None = None


class ServeServer:
    """One daemon instance; see the module docstring for the contract."""

    def __init__(self, config: ServeConfig) -> None:
        if config.socket_path is None and config.tcp is None:
            raise ServeError(
                protocol.E_BAD_REQUEST,
                "ServeConfig needs a socket_path or a tcp (host, port)",
            )
        self.config = config
        self.registry = InstanceRegistry(max_bytes=config.max_resident_bytes)
        self.admission = AdmissionController(
            self.registry, max_pending=config.max_pending
        )
        self.batcher = Batcher(
            workers=config.workers,
            max_delay_s=config.max_delay_s,
            max_batch=config.max_batch,
        )
        # Registry publishes (cache loads, mesh/DAG builds) are blocking
        # and mutually exclusive; one dedicated thread keeps them off the
        # event loop *and* serialised.
        self._registry_exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-registry"
        )
        self._server: asyncio.AbstractServer | None = None
        self._writers: set = set()
        self._tasks: set = set()
        self._drained = asyncio.Event()
        self._draining = False

    # -- lifecycle -----------------------------------------------------

    async def run(self) -> None:
        """Bring the daemon up, serve until drained, clean up."""
        if self.config.trace_path:
            obs.enable_tracing()
        self.batcher.start()
        if self.config.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_conn, path=self.config.socket_path
            )
        else:
            host, port = self.config.tcp
            self._server = await asyncio.start_server(
                self._handle_conn, host=host, port=port
            )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        print(READY_LINE, flush=True)
        await self._drained.wait()

    def request_drain(self) -> None:
        """Signal-safe drain trigger (idempotent)."""
        if not self._draining:
            self._draining = True
            task = asyncio.get_running_loop().create_task(self._drain())
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _drain(self) -> None:
        """Finish in-flight, refuse new, unlink everything, exit run()."""
        self.admission.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.admission.wait_idle()
        await self.batcher.shutdown()
        self._registry_exec.shutdown(wait=True)
        self.registry.close_all()
        for writer in list(self._writers):
            writer.close()
        if self.config.socket_path is not None:
            try:
                os.unlink(self.config.socket_path)
            except FileNotFoundError:
                pass
        if self.config.trace_path:
            _export_trace(self.config.trace_path)
        self._drained.set()

    # -- connection / request handling ---------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    prefix = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                try:
                    length = protocol.frame_length(prefix)
                    body = await reader.readexactly(length)
                    payload = protocol.decode_frame(body)
                except ServeError as exc:
                    await self._reply(
                        writer, write_lock,
                        protocol.error_response(None, exc.code, str(exc)),
                    )
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                # Handle each request concurrently so one long schedule
                # does not head-of-line block the pipelined frames
                # behind it (that concurrency is what the batcher
                # coalesces).
                task = asyncio.get_running_loop().create_task(
                    self._handle_request(payload, writer, write_lock)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _handle_request(self, payload, writer, write_lock) -> None:
        request_id = payload.get("id")
        with obs.span("serve.request", cat="serve"):
            try:
                response = await self._respond(payload)
            except ServeError as exc:
                response = protocol.error_response(
                    request_id, exc.code, str(exc),
                    retry_after=exc.retry_after,
                )
            except ReproError as exc:
                response = protocol.error_response(
                    request_id, protocol.E_BAD_REQUEST, str(exc)
                )
            except Exception as exc:  # never kill the daemon on one request
                response = protocol.error_response(
                    request_id, protocol.E_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                )
            await self._reply(writer, write_lock, response)

    async def _reply(self, writer, write_lock, response: dict) -> None:
        with obs.span("serve.reply", cat="serve"):
            data = protocol.encode_frame(response)
            async with write_lock:
                if writer.is_closing():
                    return
                writer.write(data)
                try:
                    await writer.drain()
                except ConnectionError:
                    pass

    async def _respond(self, payload: dict) -> dict:
        with obs.span("serve.accept", cat="serve"):
            protocol.validate_request(payload)
            kind = payload["kind"]
        request_id = payload["id"]
        if kind == "status":
            return protocol.ok_response(request_id, self._status())
        if kind == "metrics":
            return protocol.ok_response(request_id, self._metrics())
        if kind == "publish":
            return protocol.ok_response(
                request_id, await self._publish(payload)
            )
        return protocol.ok_response(
            request_id, await self._schedule(payload)
        )

    # -- request kinds -------------------------------------------------

    def _status(self) -> dict:
        return {
            "pid": os.getpid(),
            "protocol": protocol.PROTOCOL_VERSION,
            "workers": self.batcher.workers,
            "admission": self.admission.snapshot(),
            "registry": self.registry.snapshot(),
            "batcher": {
                "chunks_dispatched": self.batcher.chunks_dispatched,
                "cells_dispatched": self.batcher.cells_dispatched,
                "max_delay_s": self.batcher.max_delay_s,
                "max_batch": self.batcher.max_batch,
            },
        }

    def _metrics(self) -> dict:
        return {
            "instances": dict(self.registry.counters),
            "admission": self.admission.snapshot(),
            "obs": obs.metrics_snapshot(),
        }

    async def _publish(self, payload: dict) -> dict:
        self.admission.admit("publish")
        try:
            spec = InstanceSpec.from_payload(payload["instance"])
            entry = await self._get_or_publish(
                spec,
                tuple(payload.get("block_sizes", [])),
                tuple(payload.get("algorithms", [])),
                payload.get("engine", "auto"),
            )
            return {
                "instance": entry.key,
                "bytes": entry.nbytes,
                "block_sizes": list(entry.block_sizes),
                "resident_bytes": self.registry.resident_bytes,
            }
        finally:
            self.admission.release()

    async def _schedule(self, payload: dict) -> dict:
        self.admission.admit("schedule")
        lease = None
        try:
            deadline = self.admission.stamp_deadline(
                payload.get("deadline_s")
            )
            spec = InstanceSpec.from_payload(payload["instance"])
            engine = payload.get("engine", "auto")
            entry = await self._get_or_publish(
                spec,
                (payload["block_size"],),
                (payload["algorithm"],),
                engine,
            )
            # The publish may have been the slow part; a request whose
            # deadline died waiting for it must not dispatch.
            self.admission.check_deadline(deadline)
            lease = self.registry.pin(entry)
            request = BatchRequest(
                algorithm=payload["algorithm"],
                m=payload["m"],
                block_size=payload["block_size"],
                seed=payload["seed"],
                with_comm=payload.get("with_comm", True),
                engine=engine,
                lease=lease,
                future=asyncio.get_running_loop().create_future(),
                deadline=deadline,
            )
            lease = None  # the batcher owns (and releases) it now
            summary = await self.batcher.submit(request)
            return summary.as_dict()
        finally:
            if lease is not None:
                lease.release()
            self.admission.release()

    async def _get_or_publish(self, spec, block_sizes, algorithms, engine):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._registry_exec,
            lambda: self.registry.get_or_publish(
                spec, block_sizes=block_sizes, algorithms=algorithms,
                engine=engine,
            ),
        )


def _export_trace(path: str) -> None:
    """Drain the daemon's merged span/metric buffers into a Chrome trace.

    Also prints the ``repro.obs`` summary table (count/total/p50/p95/max
    per span name) to stderr, so a drained daemon's log carries its own
    request-latency percentiles — CI's serve-smoke job asserts on them.
    """
    spans = obs.merge_spans([obs.drain_spans()])
    metrics = obs.drain_metrics()
    obs.write_chrome_trace(path, spans, metrics=metrics)
    print(
        f"repro-serve: wrote trace {path} ({len(spans)} spans from "
        f"{len({s.pid for s in spans})} pids)",
        file=sys.stderr, flush=True,
    )
    print(obs.summary_text(spans, metrics), file=sys.stderr, flush=True)


def run_server(config: ServeConfig) -> int:
    """Blocking daemon entry point (the ``repro serve`` command body)."""
    server = ServeServer(config)
    asyncio.run(server.run())
    return 0
