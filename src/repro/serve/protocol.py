"""Wire protocol of the scheduling daemon: length-prefixed JSON frames.

One frame is a 4-byte little-endian unsigned length followed by that
many bytes of UTF-8 JSON.  Both directions use the same framing; a
connection may pipeline any number of requests, and responses carry the
request's ``id`` so they can return out of order (the batcher holds
compatible requests open across the coalescing window while later
requests on the same connection are answered immediately).

Request frame::

    {"v": 1, "id": 7, "kind": "schedule", ...kind-specific fields}

Response frame (one per request, matched by ``id``)::

    {"id": 7, "ok": true,  "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "...", "message": "...",
                                     "retry_after": 0.5}}

Request kinds
-------------
``schedule``
    One grid cell: ``instance`` (see below), ``algorithm``, ``m``,
    ``block_size``, ``seed``, plus optional ``engine`` (default
    ``"auto"``), ``with_comm`` (default true) and ``deadline_s`` — a
    per-request deadline in seconds; an expired request is answered
    with :data:`E_DEADLINE_EXCEEDED` instead of a stale result.
``publish``
    Pre-publish an instance into shared memory: ``instance`` plus
    optional ``block_sizes`` (labellings to publish alongside).
``status``
    Daemon liveness/occupancy snapshot (resident instances, pending
    requests, drain state).
``metrics``
    Registry gauges plus the obs metrics snapshot.

The ``instance`` object names a mesh-derived sweep instance exactly like
an experiment config: ``{"mesh", "target_cells", "mesh_seed", "k"}``.
Its content key (the registry's LRU key) is derived server-side via
``repro.cache.instance_key``, so a daemon-resident instance and a
build-cache entry share one identity.
"""

from __future__ import annotations

import json
import socket
import struct

from repro.util.errors import ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "REQUEST_KINDS",
    "ERROR_CODES",
    "E_BAD_REQUEST",
    "E_UNSUPPORTED_VERSION",
    "E_UNKNOWN_KIND",
    "E_DEADLINE_EXCEEDED",
    "E_OVERLOADED",
    "E_RESIDENT_BUDGET",
    "E_SHUTTING_DOWN",
    "E_INTERNAL",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "ok_response",
    "error_response",
    "error_from_payload",
    "validate_request",
]

#: Bumped on any incompatible frame/schema change; requests carry it as
#: ``v`` and mismatches are refused with :data:`E_UNSUPPORTED_VERSION`.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON body — a corrupted length prefix must
#: fail loudly instead of allocating gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct("<I")

REQUEST_KINDS = ("schedule", "publish", "metrics", "status")

# Typed error codes (the ``error.code`` field of a refusal frame).
E_BAD_REQUEST = "bad_request"
E_UNSUPPORTED_VERSION = "unsupported_version"
E_UNKNOWN_KIND = "unknown_kind"
E_DEADLINE_EXCEEDED = "deadline_exceeded"
E_OVERLOADED = "overloaded"
E_RESIDENT_BUDGET = "resident_budget"
E_SHUTTING_DOWN = "shutting_down"
E_INTERNAL = "internal"

ERROR_CODES = (
    E_BAD_REQUEST,
    E_UNSUPPORTED_VERSION,
    E_UNKNOWN_KIND,
    E_DEADLINE_EXCEEDED,
    E_OVERLOADED,
    E_RESIDENT_BUDGET,
    E_SHUTTING_DOWN,
    E_INTERNAL,
)


def encode_frame(payload: dict) -> bytes:
    """Serialise one frame: length prefix + compact JSON body."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    data = body.encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ServeError(
            E_BAD_REQUEST,
            f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES",
        )
    return _LEN.pack(len(data)) + data


def decode_frame(data: bytes) -> dict:
    """Parse one frame body (the bytes after the length prefix)."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(E_BAD_REQUEST, f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServeError(
            E_BAD_REQUEST, f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def frame_length(prefix: bytes) -> int:
    """Validated body length from a 4-byte prefix."""
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ServeError(
            E_BAD_REQUEST,
            f"frame length {length} exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}) — corrupt prefix or protocol mismatch",
        )
    return length


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes from a blocking socket (None on EOF)."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict | None:
    """Blocking read of one frame from ``sock``; ``None`` on clean EOF.

    Client-side only — the daemon uses asyncio stream readers; lint rule
    RPL007 bans blocking socket reads inside ``repro.serve`` coroutines.
    """
    prefix = _recv_exact(sock, _LEN.size)
    if prefix is None:
        return None
    length = frame_length(prefix)
    body = _recv_exact(sock, length)
    if body is None:
        raise ServeError(
            E_BAD_REQUEST, "connection closed mid-frame (truncated body)"
        )
    return decode_frame(body)


def write_frame(sock: socket.socket, payload: dict) -> None:
    """Blocking write of one frame to ``sock`` (client-side only)."""
    sock.sendall(encode_frame(payload))


def ok_response(request_id, result: dict) -> dict:
    """A success frame for request ``request_id``."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id, code: str, message: str, retry_after: float | None = None
) -> dict:
    """A typed error frame for request ``request_id``."""
    error: dict = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"id": request_id, "ok": False, "error": error}


def error_from_payload(response: dict) -> ServeError:
    """Rehydrate a refusal frame into the :class:`ServeError` it carries."""
    error = response.get("error") or {}
    return ServeError(
        error.get("code", E_INTERNAL),
        error.get("message", "daemon returned an error without a message"),
        retry_after=error.get("retry_after"),
    )


_INSTANCE_FIELDS = {
    "mesh": str,
    "target_cells": int,
    "mesh_seed": int,
    "k": int,
}

_SCHEDULE_FIELDS = {
    "algorithm": str,
    "m": int,
    "block_size": int,
}


def _check_fields(obj: dict, fields: dict, where: str) -> None:
    for name, typ in fields.items():
        if name not in obj:
            raise ServeError(E_BAD_REQUEST, f"{where} is missing {name!r}")
        if not isinstance(obj[name], typ) or isinstance(obj[name], bool):
            raise ServeError(
                E_BAD_REQUEST,
                f"{where}.{name} must be {typ.__name__}, "
                f"got {type(obj[name]).__name__}",
            )


def validate_request(payload: dict) -> dict:
    """Check version, kind, and kind-specific fields of one request.

    Returns the payload (for chaining) or raises :class:`ServeError`
    with the matching typed code — the server turns that directly into
    the refusal frame.
    """
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ServeError(
            E_UNSUPPORTED_VERSION,
            f"protocol version {version!r} unsupported "
            f"(daemon speaks {PROTOCOL_VERSION})",
        )
    if "id" not in payload:
        raise ServeError(E_BAD_REQUEST, "request is missing 'id'")
    kind = payload.get("kind")
    if kind not in REQUEST_KINDS:
        raise ServeError(
            E_UNKNOWN_KIND,
            f"unknown request kind {kind!r} (expected one of {REQUEST_KINDS})",
        )
    if kind in ("schedule", "publish"):
        instance = payload.get("instance")
        if not isinstance(instance, dict):
            raise ServeError(
                E_BAD_REQUEST, f"{kind} request needs an 'instance' object"
            )
        _check_fields(instance, _INSTANCE_FIELDS, "instance")
    if kind == "schedule":
        _check_fields(payload, _SCHEDULE_FIELDS, "schedule request")
        if "seed" not in payload:
            raise ServeError(E_BAD_REQUEST, "schedule request is missing 'seed'")
        deadline = payload.get("deadline_s")
        if deadline is not None and (
            isinstance(deadline, bool)
            or not isinstance(deadline, (int, float))
            or deadline <= 0
        ):
            raise ServeError(
                E_BAD_REQUEST, f"deadline_s must be a positive number, got {deadline!r}"
            )
    if kind == "publish":
        sizes = payload.get("block_sizes", [])
        if not isinstance(sizes, list) or any(
            isinstance(s, bool) or not isinstance(s, int) or s < 1 for s in sizes
        ):
            raise ServeError(
                E_BAD_REQUEST,
                f"block_sizes must be a list of positive ints, got {sizes!r}",
            )
    return payload
