"""Scheduling-as-a-service: the resident ``repro serve`` daemon.

Everything the one-shot CLI rebuilds per invocation — meshes, sweep
DAGs, published shared-memory segments, spawned worker interpreters —
stays resident here, so a stream of schedule requests pays the build
cost once and the dispatch cost per request.  The package splits into
five planes:

``protocol``
    Versioned length-prefixed JSON frames over a unix socket (or TCP),
    typed error payloads, request validation.
``instances``
    Pin-refcounted LRU registry of instances published once into shared
    memory (cache hits hydrate from ``repro.cache`` without rebuilding
    DAGs), byte-accounted eviction that never touches a pinned entry.
``batcher``
    Coalesces compatible requests into one grid chunk within a small
    delay window and dispatches to a resident spawn-context pool.
``admission``
    Bounded pending queue, per-request deadlines, resident-byte budget
    shedding, and the SIGTERM drain gate.
``server`` / ``client``
    The asyncio daemon tying the planes together, and the blocking
    client used by tests, ``repro request``, and campaign ``--serve``.

Results are bit-identical to a serial ``run_grid`` over the same cells:
workers run the same chunk entry point, and every cell's randomness is
derived from its seed alone.
"""

from repro.serve.admission import AdmissionController
from repro.serve.batcher import Batcher, BatchRequest
from repro.serve.client import ServeClient, parse_address
from repro.serve.instances import InstanceRegistry, InstanceSpec, Lease
from repro.serve.protocol import PROTOCOL_VERSION, ERROR_CODES
from repro.serve.server import ServeConfig, ServeServer, run_server

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "AdmissionController",
    "Batcher",
    "BatchRequest",
    "InstanceRegistry",
    "InstanceSpec",
    "Lease",
    "ServeClient",
    "ServeConfig",
    "ServeServer",
    "parse_address",
    "run_server",
]
