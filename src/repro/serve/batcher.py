"""Request coalescing and dispatch onto the resident worker pool.

The daemon's latency/throughput trade is made here: schedule requests
arriving within a small window (``max_delay_s``) that are *compatible*
— same published segment, engine, block size, and comm setting — are
coalesced into one grid chunk and dispatched as a single IPC round trip
to a **resident** spawn-context pool (created once at daemon start, so
a warm request never pays interpreter/import/attach startup).  Workers
run the exact chunk entry point of the one-shot dispatcher
(:func:`repro.parallel.worker.run_chunk`), so results are bit-identical
to ``run_grid`` by construction: every cell's randomness is a function
of its seed alone.

Batches respect per-request deadlines twice: an already-expired request
is dropped from the chunk at dispatch (its slot answered with
``deadline_exceeded``), and a result arriving after the deadline is
discarded the same way — a client never receives a stale result.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro import obs
from repro.serve import protocol
from repro.serve.instances import Lease
from repro.util.errors import ServeError
from repro.util.timing import now

__all__ = ["BatchRequest", "Batcher", "init_serve_worker"]

#: Default coalescing window: long enough that one pipelined burst of
#: client frames lands in one chunk, short enough to be invisible next
#: to scheduling work.
DEFAULT_MAX_DELAY_S = 0.005

#: Hard cap on cells per coalesced chunk (memory/latency guard).
DEFAULT_MAX_BATCH = 64


def init_serve_worker(trace: bool = False) -> None:
    """Pool initializer for the daemon's resident workers.

    Unlike the one-shot grid pool (whose initializer pre-attaches one
    manifest), a serve worker outlives many instances: it attaches
    lazily per chunk (memoised per segment inside
    :func:`repro.parallel.shm_store.attach`, which also evicts the
    previous segment).  The worker still ties its lifetime to the
    daemon's and drops mappings at exit.
    """
    import atexit

    from repro import obs as worker_obs
    from repro.parallel.shm_store import detach_all
    from repro.parallel.worker import _die_with_parent

    _die_with_parent()
    if trace:
        worker_obs.enable_tracing()
    else:
        worker_obs.disable_tracing()
    worker_obs.reset()
    atexit.register(detach_all)


def _worker_ready() -> int:
    """No-op task used to pre-spawn pool workers at daemon start."""
    import os

    return os.getpid()


@dataclass
class BatchRequest:
    """One in-flight schedule request inside the batcher."""

    algorithm: str
    m: int
    block_size: int
    seed: object
    with_comm: bool
    engine: str
    lease: Lease
    future: asyncio.Future
    #: Absolute monotonic deadline (``repro.util.timing.now`` timeline),
    #: or ``None`` for no deadline.
    deadline: float | None = None

    def expired(self, at: float) -> bool:
        return self.deadline is not None and at >= self.deadline

    def batch_key(self) -> tuple:
        """Coalescing compatibility: segment × engine × block × comm."""
        return (
            self.lease.manifest.segment,
            self.engine,
            self.block_size,
            self.with_comm,
        )


@dataclass
class _PendingBatch:
    requests: list = field(default_factory=list)
    timer: object = None


class Batcher:
    """Coalesce compatible requests; dispatch chunks to a resident pool."""

    def __init__(
        self,
        workers: int = 2,
        max_delay_s: float = DEFAULT_MAX_DELAY_S,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        self.workers = max(int(workers), 1)
        self.max_delay_s = max_delay_s
        self.max_batch = max(int(max_batch), 1)
        self._pool = None
        self._batches: dict[tuple, _PendingBatch] = {}
        self._dispatches: set = set()
        self.chunks_dispatched = 0
        self.cells_dispatched = 0

    # -- pool lifecycle ------------------------------------------------

    def start(self) -> None:
        """Create the resident spawn pool and pre-spawn its workers.

        Paying interpreter+import startup here — not on the first
        request — is what makes warm request latency independent of
        process creation (the cold/warm gap BENCH_7's serve family
        measures).
        """
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import get_context

        if self._pool is not None:
            return
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=get_context("spawn"),
            initializer=init_serve_worker,
            initargs=(obs.tracing_enabled(),),
        )
        ready = [
            self._pool.submit(_worker_ready) for _ in range(self.workers)
        ]
        for fut in ready:
            fut.result()

    async def shutdown(self) -> None:
        """Flush pending batches, await in-flight chunks, stop the pool."""
        for key in list(self._batches):
            self._flush(key)
        while self._dispatches:
            await asyncio.gather(*list(self._dispatches),
                                 return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- request path --------------------------------------------------

    async def submit(self, request: BatchRequest):
        """Enqueue one request; resolves to its ``ScheduleSummary``.

        The request joins (or opens) the pending batch of its
        compatibility key; the batch flushes when the coalescing window
        elapses or the batch cap is reached, whichever first.
        """
        if self._pool is None:
            raise ServeError(protocol.E_INTERNAL, "batcher pool not started")
        key = request.batch_key()
        batch = self._batches.get(key)
        if batch is None:
            batch = self._batches[key] = _PendingBatch()
            loop = asyncio.get_running_loop()
            batch.timer = loop.call_later(
                self.max_delay_s, self._flush, key
            )
        batch.requests.append(request)
        if len(batch.requests) >= self.max_batch:
            self._flush(key)
        return await request.future

    def _flush(self, key: tuple) -> None:
        batch = self._batches.pop(key, None)
        if batch is None:
            return
        if batch.timer is not None:
            batch.timer.cancel()
        with obs.span(
            "serve.batch",
            cat="serve",
            args_fn=lambda: {
                "requests": len(batch.requests), "segment": key[0],
            },
        ):
            at = now()
            live: list[BatchRequest] = []
            for request in batch.requests:
                if request.expired(at):
                    _refuse_expired(request, "before dispatch")
                else:
                    live.append(request)
        if not live:
            return
        task = asyncio.get_running_loop().create_task(
            self._dispatch(live)
        )
        self._dispatches.add(task)
        task.add_done_callback(self._dispatches.discard)

    async def _dispatch(self, requests: list) -> None:
        """Run one coalesced chunk on the pool; settle every request."""
        from repro.parallel.dispatcher import GridCell
        from repro.parallel.worker import run_chunk

        first = requests[0]
        cells = tuple(
            GridCell(i, r.algorithm, r.m, r.block_size, r.seed)
            for i, r in enumerate(requests)
        )
        self.chunks_dispatched += 1
        self.cells_dispatched += len(cells)
        try:
            with obs.span(
                "serve.dispatch",
                cat="serve",
                args_fn=lambda: {"cells": len(cells)},
            ):
                pairs, worker_rss, payload = await asyncio.wrap_future(
                    self._pool.submit(
                        run_chunk,
                        first.lease.manifest,
                        cells,
                        first.with_comm,
                        first.engine,
                    )
                )
            obs.ingest_payload(payload)
            obs.gauge_max("serve.peak_worker_rss_mb", worker_rss)
        except BaseException as exc:
            obs.recover_payload_from_exception(exc)
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(ServeError(
                        protocol.E_INTERNAL,
                        f"worker chunk failed: {type(exc).__name__}: {exc}",
                    ))
                request.lease.release()
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            return
        at = now()
        for index, summary in pairs:
            request = requests[index]
            if request.expired(at):
                # The result exists but arrived late; the contract is an
                # error, never a stale answer.
                _refuse_expired(request, "after dispatch")
            elif not request.future.done():
                request.future.set_result(summary)
            request.lease.release()


def _refuse_expired(request: BatchRequest, when: str) -> None:
    obs.inc("serve.deadline_exceeded")
    if not request.future.done():
        request.future.set_exception(ServeError(
            protocol.E_DEADLINE_EXCEEDED,
            f"deadline expired {when} (deadline_s elapsed while the "
            "request was queued or running)",
        ))
    if when == "before dispatch":
        request.lease.release()
