"""Trace exporters: Chrome trace-event JSON, flat JSON, terminal summary.

The Chrome format is the `trace-event`_ JSON-object form Perfetto and
``chrome://tracing`` both load: complete (``"ph": "X"``) events with
microsecond ``ts``/``dur``, one track per ``(pid, tid)``, plus
``process_name`` metadata events so worker processes are labelled in
the UI.  :func:`validate_chrome_trace` checks the structural contract
tests and CI rely on; the flat JSON form round-trips spans and metrics
losslessly for ad-hoc analysis; :func:`summary_text` renders a top-N
table with p50/p95 per span name for quick terminal reads.

.. _trace-event:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from repro.obs.tracer import Span, merge_spans

__all__ = [
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "flat_json",
    "summary_text",
]


def chrome_trace(
    spans: Sequence[Span],
    metrics: Mapping[str, Any] | None = None,
    min_pid: int | None = None,
) -> dict[str, Any]:
    """Build a Perfetto-loadable trace-event payload from merged spans.

    ``min_pid`` (default: the smallest pid present) is labelled as the
    driver process; every other pid is labelled as a worker.  Metrics
    ride along under ``otherData`` so one artifact carries the whole
    observation.
    """
    ordered = merge_spans([spans])
    events: list[dict[str, Any]] = []
    pids = sorted({s.pid for s in ordered})
    driver = min_pid if min_pid is not None else (pids[0] if pids else 0)
    for pid in pids:
        label = "repro driver" if pid == driver else "repro worker"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{label} (pid {pid})"},
            }
        )
    for s in ordered:
        events.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": s.start * 1e6,
                "dur": s.dur * 1e6,
                "pid": s.pid,
                "tid": s.stream,
                "args": dict(s.args) if s.args else {},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": dict(metrics) if metrics else {}},
    }


def validate_chrome_trace(payload: Any) -> list[str]:
    """Structural check of a trace-event payload; returns problems found."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a dict"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents is missing or empty"]
    n_complete = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not a dict")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"event {i} has unsupported ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"event {i} lacks a name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"event {i} lacks an integer pid")
        if not isinstance(ev.get("tid"), int):
            problems.append(f"event {i} lacks an integer tid")
        if ph == "M":
            continue
        n_complete += 1
        for key in ("ts", "dur"):
            value = ev.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"event {i} {key} is not a non-negative number")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"event {i} args is not a dict")
    if n_complete == 0:
        problems.append("no complete ('ph': 'X') events in trace")
    return problems


def write_chrome_trace(
    path: str,
    spans: Sequence[Span],
    metrics: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Validate and write a Chrome trace; returns the payload written."""
    payload = chrome_trace(spans, metrics=metrics)
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError("invalid chrome trace: " + "; ".join(problems))
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return payload


def flat_json(
    spans: Sequence[Span],
    metrics: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Lossless flat form: every span field verbatim, metrics alongside."""
    return {
        "spans": [
            {
                "name": s.name,
                "cat": s.cat,
                "start": s.start,
                "dur": s.dur,
                "pid": s.pid,
                "stream": s.stream,
                "depth": s.depth,
                "args": dict(s.args) if s.args else None,
            }
            for s in merge_spans([spans])
        ],
        "metrics": dict(metrics) if metrics else {},
    }


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    rank = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[rank]


def summary_text(
    spans: Sequence[Span],
    metrics: Mapping[str, Any] | None = None,
    top: int = 15,
) -> str:
    """Top-N span-name table (count/total/p50/p95/max ms) plus metrics."""
    by_name: dict[str, list[float]] = {}
    for s in spans:
        by_name.setdefault(s.name, []).append(s.dur)
    rows = []
    for name, durs in by_name.items():
        durs.sort()
        rows.append(
            (
                name,
                len(durs),
                sum(durs) * 1e3,
                _percentile(durs, 0.50) * 1e3,
                _percentile(durs, 0.95) * 1e3,
                durs[-1] * 1e3,
            )
        )
    rows.sort(key=lambda r: (-r[2], r[0]))
    lines = [
        f"{'span':<28} {'count':>7} {'total_ms':>10} "
        f"{'p50_ms':>9} {'p95_ms':>9} {'max_ms':>9}"
    ]
    for name, count, total, p50, p95, mx in rows[: max(top, 1)]:
        lines.append(
            f"{name:<28} {count:>7} {total:>10.3f} "
            f"{p50:>9.3f} {p95:>9.3f} {mx:>9.3f}"
        )
    if len(rows) > top:
        lines.append(f"... {len(rows) - top} more span names")
    if metrics:
        counters = metrics.get("counters", {})
        gauges = metrics.get("gauges", {})
        if counters:
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name} = {counters[name]}")
        if gauges:
            lines.append("gauges:")
            for name in sorted(gauges):
                lines.append(f"  {name} = {gauges[name]:.6g}")
    return "\n".join(lines)
