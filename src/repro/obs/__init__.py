"""Runtime observability: span tracing, metrics, cross-process merge, export.

The package has four small layers:

* :mod:`repro.obs.tracer` — hierarchical :func:`span` context manager /
  :func:`traced` decorator over a thread-safe ring buffer; a no-op when
  disabled (``REPRO_TRACE`` unset) so hot paths pay ~zero cost.
* :mod:`repro.obs.metrics` — counters/gauges (:func:`inc`,
  :func:`gauge_max`) riding the same enable switch.
* :mod:`repro.obs.collect` — workers drain their buffers into payloads
  shipped back over the existing result channel; the parent ingests
  them into one pid/stream-tagged timeline (exception path included).
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable),
  flat JSON, and a terminal top-N/percentile summary.

See ``docs/observability.md`` for the end-to-end guide.
"""

from repro.obs.collect import (
    attach_payload_to_exception,
    export_payload,
    ingest_payload,
    recover_payload_from_exception,
)
from repro.obs.export import (
    chrome_trace,
    flat_json,
    summary_text,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    drain_metrics,
    gauge,
    gauge_max,
    inc,
    ingest_metrics,
    merge_metrics,
    metrics_snapshot,
    reset_metrics,
)
from repro.obs.tracer import (
    DEFAULT_BUFFER_SPANS,
    Span,
    disable_tracing,
    drain_spans,
    enable_tracing,
    ingest_spans,
    merge_spans,
    peek_spans,
    span,
    span_sort_key,
    traced,
    tracing_enabled,
)
from repro.obs.tracer import reset as reset_spans

__all__ = [
    "DEFAULT_BUFFER_SPANS",
    "Span",
    "span",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "reset",
    "reset_spans",
    "drain_spans",
    "peek_spans",
    "ingest_spans",
    "merge_spans",
    "span_sort_key",
    "inc",
    "gauge",
    "gauge_max",
    "metrics_snapshot",
    "drain_metrics",
    "reset_metrics",
    "ingest_metrics",
    "merge_metrics",
    "export_payload",
    "ingest_payload",
    "attach_payload_to_exception",
    "recover_payload_from_exception",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "flat_json",
    "summary_text",
]


def reset() -> None:
    """Clear all buffered spans and metrics (one call for both planes)."""
    reset_spans()
    reset_metrics()
