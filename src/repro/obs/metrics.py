"""Counters/gauges registry riding the same enable switch as the tracer.

Metrics answer the questions spans are too coarse for: how many bucket
rotations a schedule took, how often the Dag memo caches hit, how large
the ready pool peaked.  Counters accumulate by summation; gauges keep a
high-water mark (``gauge_max``) or the last written value (``gauge``).

Everything is gated on :func:`repro.obs.tracer.tracing_enabled`, so an
``inc`` in a scheduler loop costs one boolean check when observability
is off.  Metric names must be constant strings at hot call sites — no
f-strings (RPL006); use dotted namespaces like
``"scheduler.bucket.rotations"``.
"""

from __future__ import annotations

import threading
from typing import Mapping

from repro.obs import tracer

__all__ = [
    "inc",
    "gauge",
    "gauge_max",
    "metrics_snapshot",
    "drain_metrics",
    "reset_metrics",
    "merge_metrics",
    "ingest_metrics",
]

_LOCK = threading.Lock()
_COUNTERS: dict[str, int] = {}
_GAUGES: dict[str, float] = {}


def inc(name: str, value: int = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op while tracing is disabled)."""
    if not tracer.tracing_enabled():
        return
    with _LOCK:
        _COUNTERS[name] = _COUNTERS.get(name, 0) + value


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (last write wins; no-op when off)."""
    if not tracer.tracing_enabled():
        return
    with _LOCK:
        _GAUGES[name] = float(value)


def gauge_max(name: str, value: float) -> None:
    """Raise gauge ``name`` to ``value`` if larger (high-water mark)."""
    if not tracer.tracing_enabled():
        return
    with _LOCK:
        prev = _GAUGES.get(name)
        if prev is None or value > prev:
            _GAUGES[name] = float(value)


def metrics_snapshot() -> dict[str, dict[str, float]]:
    """Copy of the registry: ``{"counters": {...}, "gauges": {...}}``."""
    with _LOCK:
        return {"counters": dict(_COUNTERS), "gauges": dict(_GAUGES)}


def drain_metrics() -> dict[str, dict[str, float]]:
    """Snapshot and clear the registry atomically."""
    with _LOCK:
        snap = {"counters": dict(_COUNTERS), "gauges": dict(_GAUGES)}
        _COUNTERS.clear()
        _GAUGES.clear()
    return snap


def reset_metrics() -> None:
    """Clear the registry without reading it."""
    with _LOCK:
        _COUNTERS.clear()
        _GAUGES.clear()


def ingest_metrics(snapshot: Mapping[str, Mapping[str, float]] | None) -> None:
    """Fold a shipped snapshot into the local registry.

    Counters add; gauges combine by max (every gauge in the package is a
    high-water mark, and max is the only order-independent combiner that
    keeps the merged registry deterministic across arrival orders).
    Explicitly-shipped data is kept even when local tracing is disabled.
    """
    if not snapshot:
        return
    with _LOCK:
        for name, value in snapshot.get("counters", {}).items():
            _COUNTERS[name] = _COUNTERS.get(name, 0) + int(value)
        for name, value in snapshot.get("gauges", {}).items():
            prev = _GAUGES.get(name)
            if prev is None or value > prev:
                _GAUGES[name] = float(value)


def merge_metrics(
    snapshots: list[Mapping[str, Mapping[str, float]]],
) -> dict[str, dict[str, float]]:
    """Combine snapshots from several processes into one registry dict."""
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in snap.get("gauges", {}).items():
            prev = gauges.get(name)
            if prev is None or value > prev:
                gauges[name] = float(value)
    return {"counters": counters, "gauges": gauges}
