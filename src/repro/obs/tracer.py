"""Hierarchical span tracer with a near-zero disabled fast path.

Spans are recorded into a bounded, thread-safe ring buffer (a
``collections.deque`` with ``maxlen`` — appends are atomic under the
GIL) and tagged with the recording process id, a stream id (the thread
ident), and the nesting depth of the enclosing span stack.  Timestamps
come from :func:`repro.util.timing.now` (``CLOCK_MONOTONIC`` on Linux,
which is system-wide), so spans recorded in different processes of one
grid run live on a single comparable timeline after
:func:`merge_spans`.

Disabled mode is the design center: :func:`span` returns a shared no-op
context manager and :func:`traced` wraps nothing, so instrumentation in
hot scheduler loops costs one boolean check.  Callers that want to
attach span arguments pass ``args_fn`` — a zero-argument callable built
lazily *only when tracing is enabled and the span closes* — never an
eagerly-built f-string or dict (lint rule RPL006 enforces this in
hot-path files).

Enable via the ``REPRO_TRACE`` environment variable (any value other
than ``""``/``"0"``), or programmatically with :func:`enable_tracing`.
"""

from __future__ import annotations

import functools
import os
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence, TypeVar, Union

from repro.util.timing import now

__all__ = [
    "Span",
    "span",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "reset",
    "drain_spans",
    "peek_spans",
    "ingest_spans",
    "merge_spans",
    "span_sort_key",
    "DEFAULT_BUFFER_SPANS",
]

#: Ring-buffer capacity (spans) unless ``REPRO_TRACE_BUFFER`` overrides it.
#: Old spans are dropped first — a trace that outgrows the buffer keeps
#: its tail, which is the part a perf investigation usually needs.
DEFAULT_BUFFER_SPANS = 65536

_F = TypeVar("_F", bound=Callable[..., Any])


@dataclass(frozen=True)
class Span:
    """One closed span: what ran, when, for how long, and where.

    ``start`` and ``dur`` are seconds on the :func:`repro.util.timing.now`
    timeline; ``pid`` is the recording process, ``stream`` the recording
    thread's ident, and ``depth`` the number of enclosing spans open on
    that stream when this one opened.  ``args`` holds the lazily-built
    annotation mapping, or ``None``.
    """

    name: str
    cat: str
    start: float
    dur: float
    pid: int
    stream: int
    depth: int
    args: Mapping[str, Any] | None = None


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "") not in ("", "0")


def _env_buffer() -> int:
    raw = os.environ.get("REPRO_TRACE_BUFFER", "")
    try:
        cap = int(raw)
    except ValueError:
        return DEFAULT_BUFFER_SPANS
    return cap if cap > 0 else DEFAULT_BUFFER_SPANS


_ENABLED: bool = _env_enabled()
_BUFFER: deque[Span] = deque(maxlen=_env_buffer())
_LOCK = threading.Lock()
_LOCAL = threading.local()


class _SpanHandle:
    """Context manager for one live span (enabled path)."""

    __slots__ = ("_name", "_cat", "_args_fn", "_start", "_depth")

    def __init__(
        self,
        name: str,
        cat: str,
        args_fn: Callable[[], Mapping[str, Any]] | None,
    ) -> None:
        self._name = name
        self._cat = cat
        self._args_fn = args_fn

    def __enter__(self) -> "_SpanHandle":
        depth = getattr(_LOCAL, "depth", 0)
        _LOCAL.depth = depth + 1
        self._depth = depth
        self._start = now()
        return self

    def __exit__(self, *exc: object) -> None:
        # Record before unwinding so a span interrupted by an exception
        # (e.g. SanitizerError mid-chunk) still lands in the buffer.
        end = now()
        _LOCAL.depth = self._depth
        args = self._args_fn() if self._args_fn is not None else None
        _BUFFER.append(
            Span(
                self._name,
                self._cat,
                self._start,
                end - self._start,
                os.getpid(),
                threading.get_ident(),
                self._depth,
                args,
            )
        )


class _NullSpan:
    """Shared no-op context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(
    name: str,
    cat: str = "repro",
    args_fn: Callable[[], Mapping[str, Any]] | None = None,
) -> Union[_SpanHandle, _NullSpan]:
    """Open a hierarchical span; a shared no-op when tracing is disabled.

    ``args_fn`` (not a dict!) defers annotation building to span close,
    so the disabled path allocates nothing.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _SpanHandle(name, cat, args_fn)


def traced(name: str | None = None, cat: str = "repro") -> Callable[[_F], _F]:
    """Decorator form of :func:`span`; span name defaults to ``__qualname__``.

    The enabled check happens per call, so decorating a function keeps
    it a plain call when tracing is off.
    """

    def deco(fn: _F) -> _F:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _ENABLED:
                return fn(*args, **kwargs)
            with _SpanHandle(label, cat, None):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco


def tracing_enabled() -> bool:
    """True when spans and metrics are being recorded in this process."""
    return _ENABLED


def enable_tracing(buffer_spans: int | None = None) -> None:
    """Turn tracing on (idempotent); optionally resize the ring buffer."""
    global _ENABLED, _BUFFER
    if buffer_spans is not None and buffer_spans > 0:
        with _LOCK:
            _BUFFER = deque(_BUFFER, maxlen=buffer_spans)
    _ENABLED = True


def disable_tracing() -> None:
    """Turn tracing off; buffered spans stay until :func:`drain_spans`."""
    global _ENABLED
    _ENABLED = False


def reset() -> None:
    """Drop all buffered spans and reset the nesting depth.

    Worker initialisers call this so a forked child does not re-ship
    spans it inherited from the parent's buffer.
    """
    with _LOCK:
        _BUFFER.clear()
    _LOCAL.depth = 0


def drain_spans() -> list[Span]:
    """Atomically remove and return every buffered span."""
    with _LOCK:
        out = list(_BUFFER)
        _BUFFER.clear()
    return out


def peek_spans() -> list[Span]:
    """Return buffered spans without clearing them (tests, summaries)."""
    with _LOCK:
        return list(_BUFFER)


def ingest_spans(spans: Iterable[Span]) -> None:
    """Append spans recorded elsewhere (another process) to this buffer.

    Explicitly-shipped data is kept even when local tracing is disabled —
    the parent may drain-and-export after turning tracing off.
    """
    with _LOCK:
        _BUFFER.extend(spans)


def span_sort_key(s: Span) -> tuple[int, int, float, int]:
    """The canonical merge order: ``(pid, stream, start, depth)``."""
    return (s.pid, s.stream, s.start, s.depth)


def merge_spans(span_lists: Iterable[Sequence[Span]]) -> list[Span]:
    """Merge per-process span lists into one deterministic timeline.

    The stable sort by ``(pid, stream, start, depth)`` makes the merged
    order a pure function of the span set — independent of arrival
    order, chunk-to-worker assignment, or buffer interleaving.
    """
    merged: list[Span] = []
    for spans in span_lists:
        merged.extend(spans)
    merged.sort(key=span_sort_key)
    return merged
