"""Cross-process span/metric collection over the existing result channel.

Workers buffer spans locally (same ring buffer as the parent) and ship
them back piggybacked on each chunk's return value — no extra IPC
channel, no shared-memory traffic.  The parent folds every payload into
its own buffer/registry, so one :func:`repro.obs.tracer.drain_spans`
at the end of a grid run yields the full multi-process timeline.

The failure path matters as much as the success path: a worker that
raises (e.g. a :class:`~repro.util.errors.SanitizerError` mid-chunk)
attaches its drained spans to the exception object before it pickles
back, and :func:`recover_payload_from_exception` rescues them in the
parent — a crashing chunk loses no trace data.
"""

from __future__ import annotations

import os
from typing import Any, Mapping

from repro.obs import metrics, tracer

__all__ = [
    "export_payload",
    "ingest_payload",
    "attach_payload_to_exception",
    "recover_payload_from_exception",
]

#: Attribute name used to smuggle a payload across the pickle boundary on
#: the exception path.  ``BaseException.__reduce__`` preserves instance
#: ``__dict__``, so the payload survives the pool's round trip verbatim.
_EXC_ATTR = "obs_payload"


def export_payload() -> dict[str, Any] | None:
    """Drain this process's spans/metrics into a picklable payload.

    Returns ``None`` when tracing is disabled — the common case costs
    one boolean check and ships nothing over the result channel.
    """
    if not tracer.tracing_enabled():
        return None
    return {
        "pid": os.getpid(),
        "spans": tuple(tracer.drain_spans()),
        "metrics": metrics.drain_metrics(),
    }


def ingest_payload(payload: Mapping[str, Any] | None) -> None:
    """Fold a worker payload into this process's buffer and registry."""
    if not payload:
        return
    tracer.ingest_spans(payload.get("spans", ()))
    metrics.ingest_metrics(payload.get("metrics"))


def attach_payload_to_exception(exc: BaseException) -> None:
    """Stash this process's drained payload on ``exc`` before it pickles.

    No-op when tracing is disabled.  Worker-side half of the
    no-silent-trace-loss contract.
    """
    payload = export_payload()
    if payload is not None:
        setattr(exc, _EXC_ATTR, payload)


def recover_payload_from_exception(exc: BaseException) -> bool:
    """Parent-side half: ingest any payload a failing worker attached.

    Returns True when a payload was recovered (and removed from the
    exception, so a retry cannot double-ingest it).
    """
    payload = getattr(exc, _EXC_ATTR, None)
    if not payload:
        return False
    ingest_payload(payload)
    try:
        delattr(exc, _EXC_ATTR)
    except AttributeError:
        pass
    return True
