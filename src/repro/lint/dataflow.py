"""Interprocedural dataflow facts over a built :class:`~repro.lint.graph.Program`.

The deep rules all reduce to a handful of fact computations on the call
graph; this module owns them so each rule stays a thin policy layer:

* :func:`reachable_with_paths` — BFS closure with witness call chains
  (the "how does the worker reach ``warm_instance``?" primitive);
* :func:`propagate_any` — generic backwards may-fixpoint: a function has
  a fact if it has it *locally* or calls any function that has it (used
  for "reaches an RNG construction", "reaches a close()", …);
* :func:`worker_entrypoints`, :func:`unsafe_rng_functions`,
  :func:`pairing_scope` — the project-specific instantiations.

Everything here consumes only the serialisable
:class:`~repro.lint.graph.FunctionInfo` summaries, never raw ASTs, so a
graph loaded from the disk cache supports the full rule set.
"""

from __future__ import annotations

from repro.lint.graph import FunctionInfo, Program

__all__ = [
    "WORKER_ENTRYPOINT_NAMES",
    "SPAWN_BANNED_NAMES",
    "RNG_SANCTIONED_PREFIXES",
    "reachable_with_paths",
    "propagate_any",
    "worker_entrypoints",
    "unsafe_rng_functions",
    "pairing_scope",
    "is_rng_sanctioned",
    "format_path",
]

#: Base names of the functions a process pool runs directly: the pool
#: initializer and the chunk entrypoint.  Everything reachable from them
#: executes inside spawn workers.
WORKER_ENTRYPOINT_NAMES = frozenset({"init_worker", "run_chunk"})

#: Base names of "parent-side construction" functions that spawn workers
#: must never reach: cache warm-up, instance/mesh/partition builders, and
#: the memoised parent caches (fork-inherited state a spawn worker would
#: silently rebuild from scratch — the ~860 MB-per-worker bug class the
#: slim-worker refactor removed).
SPAWN_BANNED_NAMES = frozenset({
    "warm_instance",
    "build_instance",
    "build_instance_batched",
    "get_instance",
    "get_blocks",
    "_instance_cache",
    "_mesh_cache",
    "_blocks_cache",
    "make_mesh",
    "partition_mesh_blocks",
    "run_cell",
    "run_grid",
})

#: Package-relative path prefixes whose direct RNG constructions are
#: sanctioned: the seeding chokepoint itself and the fuzz plane (which
#: owns its campaign entropy, mirroring RPL001's file-local exemption).
RNG_SANCTIONED_PREFIXES = ("util/rng.py", "fuzz/")


def reachable_with_paths(
    program: Program, roots: list[str]
) -> dict[str, list[str]]:
    """Qualnames reachable from ``roots`` with a witness call path each."""
    return program.reachable_from(roots)


def propagate_any(program: Program, local: dict[str, bool]) -> dict[str, bool]:
    """Backwards may-analysis: ``out[f] = local[f] or any(out[g] for g in
    callees(f))``, solved to a fixpoint over the (possibly cyclic) graph.
    """
    edges = program.call_edges()
    out = {q: bool(local.get(q, False)) for q in program.functions}
    changed = True
    while changed:
        changed = False
        for q in program.functions:
            if out[q]:
                continue
            if any(out.get(callee, False) for callee in edges[q]):
                out[q] = True
                changed = True
    return out


def worker_entrypoints(program: Program) -> list[str]:
    """Qualnames of the pool entrypoints present in this program."""
    return sorted(
        q for q, fn in program.functions.items()
        if fn.name in WORKER_ENTRYPOINT_NAMES and fn.class_name is None
    )


def is_rng_sanctioned(fn: FunctionInfo) -> bool:
    """May this function construct RNGs directly (chokepoint / fuzz)?"""
    rel = fn.relpath or ""
    return rel.startswith(RNG_SANCTIONED_PREFIXES)


def unsafe_rng_functions(program: Program) -> dict[str, bool]:
    """Functions that (transitively) construct an RNG outside the
    ``spawn_rng``/``as_rng`` chokepoint.

    A function is locally unsafe when it calls ``default_rng`` /
    ``Generator`` / ``RandomState`` / ``random.Random`` and does not live
    in a sanctioned location; the fact then propagates up the call graph.
    Calls *into* the chokepoint contribute nothing — that is precisely
    what makes ``spawn_rng(seed, ...)`` the sanctioned way to turn a seed
    into randomness.
    """
    local = {
        q: bool(fn.rng_sites) and not is_rng_sanctioned(fn)
        for q, fn in program.functions.items()
    }
    return propagate_any(program, local)


def pairing_scope(program: Program, fn: FunctionInfo) -> set[str]:
    """The functions whose close/unlink calls count for a creation in ``fn``.

    For a method, the owner is the whole class: every method of the class
    plus everything they call (the ``SharedInstanceStore`` pattern, where
    ``__init__`` stores the handle and ``close``/``_cleanup`` release it).
    For a plain function, it is the function's own transitive closure.
    """
    if fn.class_name is not None:
        roots = [
            m.qualname
            for m in program.functions_in_class(fn.module, fn.class_name)
        ]
    else:
        roots = [fn.qualname]
    return set(program.reachable_from(roots))


def format_path(program: Program, path: list[str]) -> str:
    """Human-readable ``a → b → c`` chain using short names."""

    def short(q: str) -> str:
        fn = program.functions.get(q)
        if fn is None:
            return q
        if fn.class_name:
            return f"{fn.class_name}.{fn.name}"
        return fn.name

    return " → ".join(short(q) for q in path)
