"""Driver for the AST invariant linter: files → diagnostics → report.

The pipeline per file is: read → parse (stdlib ``ast``) → run every
registered rule whose scope matches the file's package-relative path →
drop diagnostics suppressed by an inline pragma.

Pragmas
-------
A finding that is *intentional* is silenced on its own line with::

    # repro-lint: disable=RPL003 -- worker attach never owns the segment

The justification after ``--`` is **required**; a pragma without one is
itself reported (as rule ``RPL000``), so suppressions stay reviewable.
Several rules may share one pragma (``disable=RPL003,RPL004``).  Every
pragma — used or not — is counted in the JSON report.

Fixture path directives
-----------------------
Path-scoped rules (RPL004/RPL005) key off the file's location inside the
``repro`` package.  Test fixtures live under ``tests/lint_fixtures/``,
so a fixture can pin its *virtual* location with a first-lines
directive::

    # repro-lint-fixture: path=core/fast_scheduler.py

which makes ``repro lint tests/lint_fixtures/RPL005_bad.py`` behave as
if the file sat at ``src/repro/core/fast_scheduler.py``.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field

from repro.lint.rules import all_rules
from repro.lint.rules.base import Diagnostic, FileContext, Rule

__all__ = [
    "Pragma",
    "LintReport",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "package_relpath",
]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>RPL\d{3}(?:\s*,\s*RPL\d{3})*)"
    r"(?:\s*--\s*(?P<why>\S.*))?"
)
_FIXTURE_RE = re.compile(r"#\s*repro-lint-fixture:\s*path=(?P<path>\S+)")


@dataclass(frozen=True)
class Pragma:
    """One inline ``# repro-lint: disable=...`` suppression."""

    path: str
    line: int
    rules: tuple[str, ...]
    justification: str

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rules": list(self.rules),
            "justification": self.justification,
        }


@dataclass
class LintReport:
    """Outcome of one lint run over any number of files."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    pragmas: list[Pragma] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def extend(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.pragmas.extend(other.pragmas)
        self.suppressed += other.suppressed
        self.files_checked += other.files_checked

    def sort(self) -> None:
        self.diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
        self.pragmas.sort(key=lambda p: (p.path, p.line))

    # -- output formats ------------------------------------------------

    def format_text(self) -> str:
        lines = [d.format() for d in self.diagnostics]
        counted = len(self.diagnostics)
        lines.append(
            f"{counted} finding{'s' if counted != 1 else ''} in "
            f"{self.files_checked} files "
            f"({self.suppressed} suppressed by {len(self.pragmas)} pragmas)"
        )
        return "\n".join(lines)

    def format_github(self) -> str:
        """GitHub Actions workflow commands: one ``::error`` per finding."""
        lines = [
            f"::error file={d.path},line={d.line},col={d.col},"
            f"title={d.rule}::{d.message}"
            for d in self.diagnostics
        ]
        lines.append(
            f"repro lint: {len(self.diagnostics)} findings in "
            f"{self.files_checked} files"
        )
        return "\n".join(lines)

    def format_json(self) -> str:
        return json.dumps({
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [d.as_dict() for d in self.diagnostics],
            "pragma_count": len(self.pragmas),
            "pragmas": [p.as_dict() for p in self.pragmas],
            "suppressed": self.suppressed,
        }, indent=2, sort_keys=True)


def package_relpath(path: str) -> str | None:
    """Path relative to the ``repro`` package root, or ``None``.

    ``src/repro/core/dag.py`` → ``core/dag.py``; works for any prefix
    that contains a ``repro`` directory component.
    """
    parts = os.path.normpath(path).replace(os.sep, "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1:]) or None
    return None


def _comment_tokens(source: str) -> list[tuple[int, int, str]]:
    """``(line, col, text)`` of every comment token in ``source``.

    Tokenizing (rather than regex-scanning raw lines) keeps pragma
    examples inside docstrings and string literals from counting as real
    suppressions.
    """
    import io
    import tokenize

    out: list[tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError):
        pass  # the ast parse reports the syntax problem
    return out


def _scan_pragmas(source: str, path: str) -> tuple[list[Pragma], list[Diagnostic]]:
    pragmas: list[Pragma] = []
    errors: list[Diagnostic] = []
    for lineno, col, comment in _comment_tokens(source):
        m = _PRAGMA_RE.search(comment)
        if not m:
            continue
        codes = tuple(c.strip() for c in m.group("codes").split(","))
        why = (m.group("why") or "").strip()
        if not why:
            errors.append(Diagnostic(
                path=path, line=lineno, col=col + m.start(),
                rule="RPL000",
                message=(
                    "pragma without justification — write "
                    "`# repro-lint: disable=RPLxxx -- <why this is safe>`"
                ),
            ))
            continue
        pragmas.append(Pragma(path=path, line=lineno, rules=codes,
                              justification=why))
    return pragmas, errors


def _fixture_path(source: str) -> str | None:
    for line in source.splitlines()[:5]:
        m = _FIXTURE_RE.search(line)
        if m:
            return m.group("path")
    return None


def lint_source(
    source: str,
    path: str = "<string>",
    rules: list[Rule] | None = None,
) -> LintReport:
    """Lint one source string; ``path`` controls display and rule scope."""
    report = LintReport(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.diagnostics.append(Diagnostic(
            path=path, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            rule="RPL000", message=f"syntax error: {exc.msg}",
        ))
        return report
    relpath = _fixture_path(source) or package_relpath(path)
    ctx = FileContext(path=path, relpath=relpath, tree=tree, source=source)
    pragmas, pragma_errors = _scan_pragmas(source, path)
    report.pragmas = pragmas
    report.diagnostics.extend(pragma_errors)

    suppressed_at: dict[int, set[str]] = {}
    for pragma in pragmas:
        suppressed_at.setdefault(pragma.line, set()).update(pragma.rules)

    for rule in (rules if rules is not None else all_rules()):
        if getattr(rule, "deep", False):
            continue  # whole-program rules run in repro.lint.deep
        if not rule.applies(relpath):
            continue
        for diag in rule.check(ctx):
            if diag.rule in suppressed_at.get(diag.line, ()):
                report.suppressed += 1
            else:
                report.diagnostics.append(diag)
    return report


def lint_file(path: str, rules: list[Rule] | None = None) -> LintReport:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, path=path, rules=rules)


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for name in filenames:
                    if name.endswith(".py"):
                        out.add(os.path.join(dirpath, name))
        else:
            out.add(path)
    return sorted(out)


def lint_paths(paths: list[str], rules: list[Rule] | None = None) -> LintReport:
    """Lint every ``.py`` file under ``paths``; returns a merged report."""
    report = LintReport()
    for path in iter_python_files(paths):
        report.extend(lint_file(path, rules=rules))
    report.sort()
    return report
