"""AST-based invariant linter for the scheduling and parallel planes.

The runtime test suites (fuzzing, engine equivalence, grid smoke) verify
the repository's structural invariants *after the fact*; this package
enforces them *at review time*, statically, with zero runtime deps
beyond the stdlib ``ast`` module.  Shipped rules:

========  ==============================================================
RPL001    seeded determinism — no stdlib ``random``, bare
          ``np.random.*``, ``time.time()``, or unseeded ``default_rng()``
          outside ``util/rng.py`` and ``fuzz/``
RPL002    engine parity — functions accepting ``engine=`` must forward
          it to every list-scheduling / registry-algorithm call
RPL003    shm lifecycle — ``SharedMemory`` creation needs an owner with
          close+unlink (or a ``with``); buffer-backed views must decide
          writability explicitly
RPL004    dtype discipline — index arrays in ``core/``/``parallel/``
          need an explicit integer dtype
RPL005    hot-path hygiene — no quadratic idioms in the benchmarked
          scheduler/dispatcher files
========  ==============================================================

Run it as ``repro lint [paths] [--format text|json|github]``; the pytest
gate is ``tests/test_lint.py``.  ``docs/linting.md`` documents the rule
pack, the ``# repro-lint: disable=RPLxxx -- why`` pragma, and how to add
a rule.
"""

from repro.lint.engine import (
    LintReport,
    Pragma,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    package_relpath,
)
from repro.lint.rules import Diagnostic, Rule, all_rules, get_rule, register

__all__ = [
    "Diagnostic",
    "LintReport",
    "Pragma",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "package_relpath",
]
