"""AST-based invariant linter for the scheduling and parallel planes.

The runtime test suites (fuzzing, engine equivalence, grid smoke) verify
the repository's structural invariants *after the fact*; this package
enforces them *at review time*, statically, with zero runtime deps
beyond the stdlib ``ast`` module.  Shipped rules:

========  ==============================================================
RPL001    seeded determinism — no stdlib ``random``, bare
          ``np.random.*``, ``time.time()``, or unseeded ``default_rng()``
          outside ``util/rng.py`` and ``fuzz/``
RPL002    engine parity — functions accepting ``engine=`` must forward
          it to every list-scheduling / registry-algorithm call
RPL003    shm lifecycle — ``SharedMemory`` creation needs an owner with
          close+unlink (or a ``with``); buffer-backed views must decide
          writability explicitly
RPL004    dtype discipline — index arrays in ``core/``/``parallel/``
          need an explicit integer dtype
RPL005    hot-path hygiene — no quadratic idioms in the benchmarked
          scheduler/dispatcher files
========  ==============================================================

``repro lint --deep`` additionally builds an import graph and an
alias-resolved call graph over the whole tree (:mod:`repro.lint.graph`),
computes per-function dataflow facts (:mod:`repro.lint.dataflow`), and
runs the interprocedural pack:

========  ==============================================================
RPL101    spawn-safety — no call path from a worker entrypoint to
          instance/mesh/partition construction or fork-inherited caches
RPL102    shm pairing — every owning ``SharedMemory`` create reaches
          close+unlink and has no unprotected exception window
RPL103    engine propagation — ``engine=``-accepting functions forward
          the selector to ``engine=``-accepting callees, across files
RPL104    span safety — ``obs.span(...)`` on worker-reachable paths must
          be a ``with`` context expression
RPL105    seed escape — seed values must not flow into functions that
          construct RNGs outside the ``repro.util.rng`` chokepoint
========  ==============================================================

Run it as ``repro lint [paths] [--deep] [--format text|json|github]``;
the pytest gates are ``tests/test_lint.py`` and
``tests/test_lint_deep.py``.  ``docs/linting.md`` documents the rule
pack, the ``# repro-lint: disable=RPLxxx -- why`` pragma, and how to add
a rule.
"""

from repro.lint.deep import (
    deep_rules,
    lint_paths_deep,
    lint_paths_with_deep,
    shallow_rules,
)
from repro.lint.engine import (
    LintReport,
    Pragma,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    package_relpath,
)
from repro.lint.graph import Program, build_program, load_program
from repro.lint.rules import Diagnostic, Rule, all_rules, get_rule, register

__all__ = [
    "Diagnostic",
    "LintReport",
    "Pragma",
    "Program",
    "Rule",
    "all_rules",
    "build_program",
    "deep_rules",
    "get_rule",
    "register",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_paths_deep",
    "lint_paths_with_deep",
    "lint_source",
    "load_program",
    "package_relpath",
    "shallow_rules",
]
