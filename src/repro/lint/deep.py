"""Driver for the whole-program lint pass (``repro lint --deep``).

Pipeline: expand paths → build (or cache-load) the
:class:`~repro.lint.graph.Program` → run every registered
:class:`~repro.lint.rules.deep.base.DeepRule` → suppress findings
covered by the same ``# repro-lint: disable=RPLxxx -- why`` pragmas the
file-local engine honours, matched by (file, line).

:func:`lint_paths_deep` runs the deep rules alone (what the multi-file
fixture tests exercise); :func:`lint_paths_with_deep` is the CLI's
``--deep`` entry: one merged report of the file-local pass plus the deep
pass, with files counted once.
"""

from __future__ import annotations

from repro.lint.engine import (
    LintReport,
    _scan_pragmas,
    iter_python_files,
    lint_paths,
)
from repro.lint.graph import Program, load_program
from repro.lint.rules import all_rules
from repro.lint.rules.base import Rule

__all__ = [
    "deep_rules",
    "shallow_rules",
    "lint_paths_deep",
    "lint_paths_with_deep",
]


def deep_rules() -> list[Rule]:
    """Registered whole-program rules, ordered by code."""
    return [r for r in all_rules() if getattr(r, "deep", False)]


def shallow_rules() -> list[Rule]:
    """Registered file-local rules, ordered by code."""
    return [r for r in all_rules() if not getattr(r, "deep", False)]


def _suppress(report: LintReport, files: list[str]) -> None:
    """Drop diagnostics covered by an inline pragma; count them.

    Mirrors the file-local engine's suppression: a pragma on the finding's
    line, listing the finding's rule, with a justification.  Pragmas are
    recorded on the report for the JSON accounting; unjustified pragmas
    are the file-local pass's RPL000 to report, not ours (running both is
    the normal mode and must not double-report them).
    """
    suppressed_at: dict[tuple[str, int], set[str]] = {}
    for path in files:
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError:
            continue
        pragmas, _errors = _scan_pragmas(source, path)
        report.pragmas.extend(pragmas)
        for pragma in pragmas:
            suppressed_at.setdefault(
                (pragma.path, pragma.line), set()
            ).update(pragma.rules)
    kept = []
    for diag in report.diagnostics:
        if diag.rule in suppressed_at.get((diag.path, diag.line), ()):
            report.suppressed += 1
        else:
            kept.append(diag)
    report.diagnostics = kept


def lint_paths_deep(
    paths: list[str],
    rules: list[Rule] | None = None,
    cache_dir: str | None = None,
    program: Program | None = None,
) -> LintReport:
    """Run the deep rules over every ``.py`` file under ``paths``.

    ``cache_dir`` enables the source-tree-hash graph cache (see
    :func:`repro.lint.graph.load_program`); ``program`` injects a
    pre-built graph (tests / repeated runs).
    """
    files = iter_python_files(paths)
    if program is None:
        program = load_program(files, cache_dir=cache_dir)
    report = LintReport(files_checked=len(program.modules))
    for rule in (rules if rules is not None else deep_rules()):
        if not getattr(rule, "deep", False):
            continue
        report.diagnostics.extend(rule.check_program(program))
    _suppress(report, files)
    report.sort()
    return report


def lint_paths_with_deep(
    paths: list[str],
    rules: list[Rule] | None = None,
    cache_dir: str | None = None,
) -> LintReport:
    """File-local pass + deep pass, merged into one report.

    ``rules=None`` runs everything registered; an explicit list is split
    by the ``deep`` marker.  Files (and pragmas) are counted once — the
    deep half contributes only its diagnostics and suppressions.
    """
    if rules is None:
        shallow, deep = shallow_rules(), deep_rules()
    else:
        shallow = [r for r in rules if not getattr(r, "deep", False)]
        deep = [r for r in rules if getattr(r, "deep", False)]
    report = lint_paths(paths, rules=shallow)
    deep_report = lint_paths_deep(paths, rules=deep, cache_dir=cache_dir)
    report.diagnostics.extend(deep_report.diagnostics)
    report.suppressed += deep_report.suppressed
    report.sort()
    return report
