"""RPL007 — async discipline in the serve plane.

The ``repro.serve`` daemon multiplexes every connection, batch timer,
and drain step on one asyncio event loop; a single blocking call in a
coroutine stalls *all* of them — batching windows stretch, deadlines
expire in bulk, and SIGTERM drains hang.  This rule statically bans the
blocking operations that have bitten (or nearly bitten) the serve
code, when called directly from an ``async def`` body inside
``serve/``:

* **blocking sleeps** — ``time.sleep`` (use ``await asyncio.sleep``);
* **synchronous socket I/O** — ``socket.socket`` /
  ``socket.create_connection`` and the client-side frame helpers
  ``repro.serve.protocol.read_frame`` / ``write_frame`` (coroutines
  must use asyncio stream readers/writers);
* **unguarded instance construction** — ``repro.mesh.make_mesh``,
  ``repro.sweeps.build_instance``, and the runner's memoised
  ``get_instance`` / ``get_blocks`` chokepoints build meshes and sweep
  DAGs for seconds at a time; coroutines must push them through
  ``loop.run_in_executor`` (the server's registry executor), never call
  them inline.

Only the *coroutine body proper* is in scope: a call inside a nested
``def`` or ``lambda`` (e.g. the thunk handed to ``run_in_executor``)
runs on an executor thread, not the loop, and is exactly the sanctioned
pattern.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Diagnostic, FileContext, Rule, register

__all__ = ["AsyncDisciplineRule"]

#: Resolved call targets that block the event loop, with the remedy
#: each diagnostic should teach.
_BLOCKING_CALLS = {
    "time.sleep": "use 'await asyncio.sleep(...)' instead",
    "socket.socket": (
        "synchronous sockets stall the loop; use asyncio streams "
        "(open_unix_connection / start_unix_server)"
    ),
    "socket.create_connection": (
        "synchronous sockets stall the loop; use asyncio streams "
        "(open_unix_connection / open_connection)"
    ),
    "repro.serve.protocol.read_frame": (
        "blocking frame I/O is client-side only; coroutines read frames "
        "via asyncio stream readers"
    ),
    "repro.serve.protocol.write_frame": (
        "blocking frame I/O is client-side only; coroutines write via "
        "asyncio stream writers"
    ),
    "repro.mesh.make_mesh": (
        "mesh construction blocks for seconds; run it through "
        "loop.run_in_executor (the registry executor)"
    ),
    "repro.sweeps.build_instance": (
        "DAG construction blocks for seconds; run it through "
        "loop.run_in_executor (the registry executor)"
    ),
    "repro.experiments.runner.get_instance": (
        "instance construction blocks; run it through "
        "loop.run_in_executor (the registry executor)"
    ),
    "repro.experiments.runner.get_blocks": (
        "block partitioning blocks; run it through "
        "loop.run_in_executor (the registry executor)"
    ),
}


def _async_scope(
    ctx: FileContext, node: ast.AST
) -> ast.AsyncFunctionDef | None:
    """The coroutine whose body directly executes ``node``, if any.

    Walks parent links to the *nearest* function-like scope; a nested
    ``def``/``lambda`` shields its body (it runs wherever it is later
    called — for serve, on an executor thread), so only calls whose
    nearest scope is the ``async def`` itself are in the loop's hot
    path.
    """
    cur = ctx.parents.get(node)
    while cur is not None:
        if isinstance(cur, ast.AsyncFunctionDef):
            return cur
        if isinstance(cur, (ast.FunctionDef, ast.Lambda)):
            return None
        cur = ctx.parents.get(cur)
    return None


@register
class AsyncDisciplineRule(Rule):
    code = "RPL007"
    name = "async-discipline"
    description = (
        "no blocking calls (time.sleep, synchronous socket/frame I/O, "
        "inline mesh/DAG construction) directly inside async def bodies "
        "in serve/"
    )

    def applies(self, relpath: str | None) -> bool:
        # Only the daemon package runs an event loop; everything else
        # may block freely.
        return relpath is not None and relpath.startswith("serve/")

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            full = ctx.resolve(node.func)
            if full is None or full not in _BLOCKING_CALLS:
                continue
            scope = _async_scope(ctx, node)
            if scope is None:
                continue
            out.append(ctx.diagnostic(
                self, node,
                f"blocking call {full}() inside coroutine "
                f"'{scope.name}' stalls the serve event loop; "
                f"{_BLOCKING_CALLS[full]}",
            ))
        return out
