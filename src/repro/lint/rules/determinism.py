"""RPL001 — seeded determinism.

The paper's algorithms (Alg. 1–3) are *provably* good only over their own
random choices, and every experiment, golden snapshot, and cross-engine
equivalence check in this repository assumes that a fixed seed pins the
output bit-for-bit.  Any entropy source outside the
:mod:`repro.util.rng` chokepoint silently breaks that contract, so this
rule bans them statically:

* the stdlib ``random`` module (imports and calls);
* any ``numpy.random.*`` call — including ``default_rng`` — outside
  ``util/rng.py``: library code must route seeds through
  :func:`repro.util.rng.as_rng` / :func:`~repro.util.rng.spawn_rng`;
* unseeded ``default_rng()`` anywhere (fresh OS entropy);
* wall-clock ``time.time()`` (schedule output must not depend on when it
  ran; :mod:`repro.util.timing` is the sanctioned way to *measure*
  elapsed time — RPL006 polices raw ``perf_counter`` reads).

``util/rng.py`` (the chokepoint itself) and ``fuzz/`` (whose campaigns
may use ambient entropy to *search*, never to schedule) are exempt.
Attribute references such as ``np.random.Generator`` in annotations are
untouched — only calls are flagged.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Diagnostic, FileContext, Rule, register

__all__ = ["DeterminismRule"]

#: Package-relative paths where the rule does not run.
_EXEMPT_FILES = ("util/rng.py",)
_EXEMPT_DIRS = ("fuzz/",)


@register
class DeterminismRule(Rule):
    code = "RPL001"
    name = "determinism"
    description = (
        "no stdlib random, bare np.random.*, time.time(), or unseeded "
        "default_rng() outside util/rng.py and fuzz/"
    )

    def applies(self, relpath: str | None) -> bool:
        if relpath is None:
            return True
        if relpath in _EXEMPT_FILES:
            return False
        return not relpath.startswith(_EXEMPT_DIRS)

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                out.extend(self._check_import(ctx, node))
            elif isinstance(node, ast.Call):
                out.extend(self._check_call(ctx, node))
        return out

    def _check_import(self, ctx: FileContext, node: ast.AST) -> list[Diagnostic]:
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            modules = [node.module]
        else:
            return []
        return [
            ctx.diagnostic(
                self, node,
                "stdlib `random` is unseedable per-call; use "
                "repro.util.rng (as_rng/spawn_rng) instead",
            )
            for mod in modules
            if mod == "random" or mod.startswith("random.")
        ]

    def _check_call(self, ctx: FileContext, node: ast.Call) -> list[Diagnostic]:
        full = ctx.resolve(node.func)
        if full is None:
            return []
        if full == "time.time":
            return [ctx.diagnostic(
                self, node,
                "time.time() makes output depend on the wall clock; "
                "use repro.util.timing (now/Timer) for measurement-only "
                "timing",
            )]
        if full == "random" or full.startswith("random."):
            return [ctx.diagnostic(
                self, node,
                f"stdlib `{full}` call is not seed-reproducible; "
                "route randomness through repro.util.rng",
            )]
        if full.startswith("numpy.random."):
            leaf = full.rsplit(".", 1)[1]
            if leaf == "default_rng":
                if not node.args and not node.keywords:
                    msg = ("unseeded default_rng() draws OS entropy; pass "
                           "an explicit seed via repro.util.rng.as_rng")
                else:
                    msg = ("call repro.util.rng.as_rng/spawn_rng instead of "
                           "np.random.default_rng — util/rng.py is the "
                           "single seeding chokepoint")
                return [ctx.diagnostic(self, node, msg)]
            return [ctx.diagnostic(
                self, node,
                f"bare np.random.{leaf}() bypasses the seeding chokepoint; "
                "take an rng/seed argument and use repro.util.rng",
            )]
        return []
