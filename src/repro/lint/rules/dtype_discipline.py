"""RPL004 — dtype discipline for index data.

CSR offset arrays, edge lists, processor assignments, and block
labellings are *index* data: they are compared, packed into bit fields
(the sorted-pool engine shifts them into int64 codes), written into
shared-memory segments with a fixed wire format, and round-tripped
through JSON.  An implicit ``np.array(...)`` on such data inherits
whatever dtype the caller happened to hold — ``int32`` from a platform
default, ``float64`` from an arithmetic detour — and every one of those
consumers then mis-behaves in a way no single unit test pins (silent
truncation, packed-code overflow, wire-format drift between publisher
and attacher).

In ``core/`` and ``parallel/`` any ``np.array`` / ``np.asarray`` /
``np.ascontiguousarray`` call whose argument is recognisably index data
(by name: edges, src/dst, offsets, targets, indices, assignment, blocks,
labels, …) must pass an explicit ``dtype=``.  Non-index arrays
(priorities, costs, coordinates) are out of scope — they are genuinely
allowed to be floats.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Diagnostic, FileContext, Rule, register

__all__ = ["DtypeDisciplineRule"]

_CONSTRUCTORS = frozenset({
    "numpy.array",
    "numpy.asarray",
    "numpy.ascontiguousarray",
})

#: Identifier suffixes that mark an argument as index data.
_INDEX_NAMES = frozenset({
    "edges", "edge", "src", "dst", "offsets", "targets", "indices", "idx",
    "assignment", "blocks", "labels", "indegree", "succ", "pred", "order",
})


def _index_hint(arg: ast.AST) -> str | None:
    """The identifier to test against the index-name list, if any."""
    if isinstance(arg, ast.Name):
        return arg.id
    if isinstance(arg, ast.Attribute):
        return arg.attr
    return None


def _is_index_name(name: str) -> bool:
    low = name.lower()
    if low in _INDEX_NAMES:
        return True
    return any(low.endswith("_" + n) for n in _INDEX_NAMES)


@register
class DtypeDisciplineRule(Rule):
    code = "RPL004"
    name = "dtype-discipline"
    description = (
        "index arrays (edges/CSR/assignments/blocks) in core/ and "
        "parallel/ must be constructed with an explicit integer dtype"
    )

    def applies(self, relpath: str | None) -> bool:
        if relpath is None:
            return False
        return relpath.startswith(("core/", "parallel/"))

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            full = ctx.resolve(node.func)
            if full not in _CONSTRUCTORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            hint = _index_hint(node.args[0])
            if hint is None or not _is_index_name(hint):
                continue
            out.append(ctx.diagnostic(
                self, node,
                f"`{full.split('.')[-1]}({hint}, ...)` without dtype= on "
                "index data — pass an explicit integer dtype (np.int64) so "
                "packed codes and the shm wire format cannot drift",
            ))
        return out
