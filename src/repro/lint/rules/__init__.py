"""Rule registry for the ``repro.lint`` invariant linter.

Importing this package registers every built-in rule.  To add one:
write a module with a ``@register``-decorated :class:`~.base.Rule`
subclass, import it below, and add a fixture pair under
``tests/lint_fixtures/`` (see ``docs/linting.md``).
"""

from repro.lint.rules.base import (
    Diagnostic,
    FileContext,
    Rule,
    all_rules,
    get_rule,
    register,
)

# Importing the rule modules registers them (order fixes nothing — the
# registry sorts by code).
from repro.lint.rules import async_discipline as _async  # noqa: F401
from repro.lint.rules import determinism as _determinism  # noqa: F401
from repro.lint.rules import dtype_discipline as _dtype  # noqa: F401
from repro.lint.rules import engine_parity as _engine  # noqa: F401
from repro.lint.rules import hot_path as _hot_path  # noqa: F401
from repro.lint.rules import obs_discipline as _obs  # noqa: F401
from repro.lint.rules import shm_lifecycle as _shm  # noqa: F401

# The whole-program pack (RPL101+) registers alongside the file-local
# rules so --rule/--list-rules see them; the file-local engine skips
# anything marked deep=True.
from repro.lint.rules import deep as _deep  # noqa: F401

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
]
