"""Rule protocol, registry, and the shared per-file analysis context.

Every rule is a small stateless object with a ``code`` (``RPLxxx``), a
scope predicate (:meth:`Rule.applies`), and a :meth:`Rule.check` that
walks one parsed module and returns diagnostics.  Rules register
themselves with :func:`register` at import time; the engine iterates
:func:`all_rules` so adding a rule is one module plus one import in
``repro.lint.rules``.

:class:`FileContext` pre-computes what most rules need from a module:

* an **import alias table** mapping local names to dotted module paths
  (``np`` → ``numpy``, ``SharedMemory`` →
  ``multiprocessing.shared_memory.SharedMemory``), so rules match on
  resolved names and aliasing cannot dodge them;
* **parent links** for every AST node, so rules can ask "am I inside a
  ``with`` item / class / loop?" without re-walking the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "dotted_name",
    "loop_ancestor",
    "class_ancestor",
    "enclosing_function",
    "in_with_item",
]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class FileContext:
    """Everything a rule needs to inspect one parsed source file."""

    def __init__(self, path: str, relpath: str | None, tree: ast.Module,
                 source: str) -> None:
        self.path = path
        #: Path relative to the ``repro`` package root (``core/dag.py``),
        #: or ``None`` when the file lives outside the package.  Scoped
        #: rules key their :meth:`Rule.applies` off this.
        self.relpath = relpath
        self.tree = tree
        self.source = source
        self.aliases = _import_aliases(tree)
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name of ``node`` with import aliases expanded."""
        return dotted_name(node, self.aliases)

    def diagnostic(self, rule: "Rule", node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule.code,
            message=message,
        )


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name → dotted path for every import in the module."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                full = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = full
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.AST, aliases: dict[str, str] | None = None) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, with the root alias expanded.

    Returns ``None`` for anything that is not a pure attribute chain
    (calls, subscripts, literals) — rules treat that as "unknown" and
    stay silent rather than guessing.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if aliases and root in aliases:
        root = aliases[root]
    parts.append(root)
    return ".".join(reversed(parts))


def loop_ancestor(ctx: FileContext, node: ast.AST) -> ast.AST | None:
    """The nearest enclosing ``for``/``while``, if any."""
    cur = ctx.parents.get(node)
    while cur is not None:
        if isinstance(cur, (ast.For, ast.AsyncFor, ast.While)):
            return cur
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function body does not run "inside" the outer loop.
            return None
        cur = ctx.parents.get(cur)
    return None


def class_ancestor(ctx: FileContext, node: ast.AST) -> ast.ClassDef | None:
    """The nearest enclosing class definition, if any."""
    cur = ctx.parents.get(node)
    while cur is not None:
        if isinstance(cur, ast.ClassDef):
            return cur
        cur = ctx.parents.get(cur)
    return None


def enclosing_function(
    ctx: FileContext, node: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The nearest enclosing function definition, if any."""
    cur = ctx.parents.get(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cur
        cur = ctx.parents.get(cur)
    return None


def in_with_item(ctx: FileContext, node: ast.AST) -> bool:
    """True when ``node`` sits inside a ``with`` statement's context expr.

    Walking parent links from ``node``, the chain passes through a
    ``withitem`` exactly when the node is part of a context expression
    (directly, or wrapped: ``with closing(SharedMemory(...))``).  A node
    in the ``with`` *body* reaches the ``With`` statement without ever
    crossing a ``withitem``.
    """
    cur: ast.AST = node
    parent = ctx.parents.get(cur)
    while parent is not None:
        if isinstance(parent, ast.withitem) and cur is parent.context_expr:
            return True
        cur, parent = parent, ctx.parents.get(parent)
    return False


class Rule:
    """Base class: subclasses set the class attributes and ``check``."""

    code: str = "RPL000"
    name: str = ""
    description: str = ""

    def applies(self, relpath: str | None) -> bool:
        """Whether this rule runs on a file at package-relative ``relpath``."""
        return True

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and register the rule by its code."""
    rule = cls()
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate lint rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> list[Rule]:
    """Registered rules, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    return _REGISTRY[code]
