"""RPL006 — observability discipline.

The tracing plane (``repro.obs``) only earns its keep if (a) every
measurement goes through the one clock chokepoint and (b) annotating a
hot loop with spans costs nothing when tracing is off.  Two static
checks enforce that:

* **raw clock reads** — ``time.perf_counter()`` anywhere in the package
  outside ``util/timing.py`` (the chokepoint) and ``obs/`` (the plane
  built on it) is a finding.  Scattered ``perf_counter`` idioms drift:
  some subtract, some negate, some forget the monotonic contract that
  makes cross-process span timestamps comparable.  Use
  :func:`repro.util.timing.now` or :class:`repro.util.timing.Timer`.

* **eager span annotations** — in the benchmarked hot-path files an
  ``obs.span(...)`` call must not build its payload per call.  An
  f-string span name or a dict-literal ``args_fn`` is evaluated even
  when tracing is disabled, which is exactly the overhead the
  ``args_fn=lambda: {...}`` indirection exists to avoid.  Span names
  must be constants; arguments must hide behind a callable.

The eager-annotation check is file-scoped like RPL005: a figure driver
may format span names however it likes, the scheduler inner loop may
not.
"""

from __future__ import annotations

import ast
import posixpath

from repro.lint.rules.base import Diagnostic, FileContext, Rule, register

__all__ = ["ObsDisciplineRule"]

#: Package-relative locations allowed to touch the raw clock.
_CLOCK_EXEMPT_FILES = ("util/timing.py",)
_CLOCK_EXEMPT_DIRS = ("obs/",)

#: Basenames of hot-path files where span annotations must be lazy.
_HOT_FILES = frozenset({
    "fast_scheduler.py",
    "list_scheduler.py",
    "dispatcher.py",
    "worker.py",
})

#: Resolved dotted names that denote the span entry point.
_SPAN_CALLS = frozenset({
    "repro.obs.span",
    "repro.obs.tracer.span",
})


@register
class ObsDisciplineRule(Rule):
    code = "RPL006"
    name = "obs-discipline"
    description = (
        "no raw time.perf_counter() outside util/timing.py and obs/; "
        "span calls in hot-path files must not build f-strings or "
        "dicts eagerly"
    )

    def applies(self, relpath: str | None) -> bool:
        # Only package files (or fixtures opting in via the path
        # directive) are in scope; tests and scripts time however they
        # like.
        return relpath is not None

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        relpath = ctx.relpath or ""
        clock_exempt = (
            relpath in _CLOCK_EXEMPT_FILES
            or relpath.startswith(_CLOCK_EXEMPT_DIRS)
        )
        hot = posixpath.basename(relpath) in _HOT_FILES
        out: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            full = ctx.resolve(node.func)
            if full is None:
                continue
            if full == "time.perf_counter" and not clock_exempt:
                out.append(ctx.diagnostic(
                    self, node,
                    "raw time.perf_counter() bypasses the timing "
                    "chokepoint; use repro.util.timing.now() or Timer",
                ))
            elif hot and _is_span_call(full):
                out.extend(self._check_span_args(ctx, node))
        return out

    def _check_span_args(
        self, ctx: FileContext, node: ast.Call
    ) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            if isinstance(value, ast.JoinedStr):
                out.append(ctx.diagnostic(
                    self, value,
                    "f-string in a hot-path span call is formatted on "
                    "every iteration even with tracing off; use a "
                    "constant name and move detail into args_fn",
                ))
            elif isinstance(value, ast.Dict):
                out.append(ctx.diagnostic(
                    self, value,
                    "dict literal in a hot-path span call is built on "
                    "every iteration even with tracing off; wrap it as "
                    "args_fn=lambda: {...}",
                ))
        return out


def _is_span_call(full: str) -> bool:
    return full in _SPAN_CALLS
