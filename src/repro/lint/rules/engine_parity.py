"""RPL002 — engine parity.

The heap and bucket list-scheduling engines are bit-identical by
contract (``tests/test_engine_equivalence.py``), but that guarantee only
reaches the caller if the ``engine`` selector actually *arrives* at the
scheduling core.  A function that accepts ``engine=`` and then calls
``list_schedule`` without forwarding it silently pins the caller to
``"auto"`` — the grid still runs, produces identical schedules, and the
engine benchmark quietly times the wrong thing.  That bug class survives
every behavioural test precisely because the engines agree, so it must
be caught structurally:

**Any function with an ``engine`` parameter must pass ``engine=engine``
to every scheduling call in its body.**  Scheduling calls are the core
entry points (``list_schedule``, ``list_schedule_unassigned``, their
bucket twins, ``run_cell_on``) plus calls through a registry algorithm
(a local name bound from ``get_algorithm(...)`` or ``ALGORITHMS[...]``).

Functions that accept ``engine`` for signature uniformity but never run
a list scheduler (e.g. Algorithm 1) make no scheduling calls, so the
rule is vacuously satisfied there.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Diagnostic, FileContext, Rule, register

__all__ = ["EngineParityRule"]

#: Callee names (last dotted segment) that accept an ``engine`` kwarg.
#: The bucket twins (``bucket_list_schedule*``) are deliberately absent:
#: they *are* the bucket engine, reached only after ``resolve_engine``
#: has consumed the selector, and they take no ``engine`` parameter.
_SCHEDULING_CALLS = frozenset({
    "list_schedule",
    "list_schedule_unassigned",
    "run_cell_on",
})

#: Names whose call result / subscript is a registry algorithm.
_REGISTRY_SOURCES = frozenset({"get_algorithm", "ALGORITHMS"})


def _has_engine_param(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = fn.args
    every = args.posonlyargs + args.args + args.kwonlyargs
    return any(a.arg == "engine" for a in every)


def _registry_bound_names(fn: ast.AST) -> set[str]:
    """Local names assigned from ``get_algorithm(...)`` / ``ALGORITHMS[...]``."""
    bound: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        source = None
        if isinstance(value, ast.Call):
            source = value.func
        elif isinstance(value, ast.Subscript):
            source = value.value
        if source is None:
            continue
        name = source.attr if isinstance(source, ast.Attribute) else (
            source.id if isinstance(source, ast.Name) else None
        )
        if name in _REGISTRY_SOURCES:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


def _forwards_engine(call: ast.Call) -> bool:
    """True when the call passes ``engine=engine`` (or splats ``**kwargs``)."""
    for kw in call.keywords:
        if kw.arg is None:  # **kwargs splat may carry it; trust the caller
            return True
        if kw.arg == "engine":
            return isinstance(kw.value, ast.Name) and kw.value.id == "engine"
    return False


@register
class EngineParityRule(Rule):
    code = "RPL002"
    name = "engine-parity"
    description = (
        "functions accepting engine= must forward engine=engine to every "
        "list_schedule / list_schedule_unassigned / registry-algorithm call"
    )

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _has_engine_param(fn):
                continue
            registry_names = _registry_bound_names(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                callee = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if callee is None:
                    continue
                is_target = callee in _SCHEDULING_CALLS or (
                    isinstance(func, ast.Name) and callee in registry_names
                )
                if is_target and not _forwards_engine(node):
                    out.append(ctx.diagnostic(
                        self, node,
                        f"`{fn.name}` accepts engine= but this call to "
                        f"`{callee}` does not forward engine=engine — the "
                        "caller's engine choice is silently dropped",
                    ))
        return out
