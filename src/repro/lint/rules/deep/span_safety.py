"""RPL104 — span-safety on worker paths.

The obs plane's crash contract (PR 5) is that a worker dying mid-chunk
loses no trace data: every span opened in a worker is closed on the
exception edge, drained, and shipped back attached to the exception.
That only holds when spans are opened as context managers — a span
handle opened positionally (``h = obs.span(...)`` without ``with``, or a
bare ``obs.span(...)`` statement) is never closed when the next line
raises, which corrupts the nesting the Perfetto exporter validates and
silently drops the span's duration.

**Every ``obs.span(...)`` creation in a function reachable from a worker
entrypoint must be the context expression of a ``with`` statement.**
Parent-side code gets more latitude (the driver can own handles across
``yield`` boundaries); worker code, which is exactly the code whose
exceptions cross a process boundary, does not.
"""

from __future__ import annotations

from repro.lint.dataflow import format_path, worker_entrypoints
from repro.lint.graph import Program
from repro.lint.rules.base import Diagnostic, register
from repro.lint.rules.deep.base import DeepRule, program_diagnostic

__all__ = ["SpanSafetyRule"]


@register
class SpanSafetyRule(DeepRule):
    code = "RPL104"
    name = "span-safety"
    description = (
        "obs.span(...) in worker-reachable code must be opened as a "
        "`with` context expression so exception edges close it"
    )

    def check_program(self, program: Program) -> list[Diagnostic]:
        roots = worker_entrypoints(program)
        if not roots:
            return []
        reach = program.reachable_from(roots)
        out: list[Diagnostic] = []
        for qualname in sorted(reach):
            fn = program.functions[qualname]
            for line, col, in_with in fn.span_sites:
                if in_with:
                    continue
                out.append(program_diagnostic(
                    self, fn, line, col,
                    f"span opened outside a `with` block in `{fn.name}`, "
                    "which runs on the worker path "
                    f"({format_path(program, reach[qualname])}) — an "
                    "exception before the close leaves the span dangling "
                    "and its trace data is lost with the worker",
                ))
        return out
