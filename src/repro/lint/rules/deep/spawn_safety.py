"""RPL101 — spawn-safety: workers must never rebuild parent-side state.

The slim-worker contract (``tests/test_parallel_rss.py`` pins
``dag.cache.rebuild == 0``) says a spawn-context pool worker attaches to
the published shared-memory instance and inherits every warmed cache —
it never re-runs the construction pipeline.  The runtime test only
covers the configurations it executes; this rule proves the property
over the whole call graph:

**No call path may lead from a worker entrypoint (``init_worker``,
``run_chunk``) to parent-side construction** — ``warm_instance``, the
instance/mesh/partition builders, the memoised parent caches
(``get_instance`` / ``get_blocks`` / ``_instance_cache`` / …), or the
serial drivers (``run_cell``, ``run_grid``).  A worker that reaches any
of these silently rebuilds hundreds of MB of state per process (the
exact bug class the spawn-worker refactor removed) or reads
fork-inherited globals a spawn worker does not have.

The diagnostic shows the witness call chain, so the fix target — the
edge to cut or redirect through the shared store — is explicit.
"""

from __future__ import annotations

from repro.lint.dataflow import (
    SPAWN_BANNED_NAMES,
    format_path,
    worker_entrypoints,
)
from repro.lint.graph import Program
from repro.lint.rules.base import Diagnostic, register
from repro.lint.rules.deep.base import DeepRule, program_diagnostic

__all__ = ["SpawnSafetyRule"]


@register
class SpawnSafetyRule(DeepRule):
    code = "RPL101"
    name = "spawn-safety"
    description = (
        "no call path from worker entrypoints (init_worker/run_chunk) to "
        "instance construction, cache warm-up, or fork-inherited parent "
        "caches"
    )

    def check_program(self, program: Program) -> list[Diagnostic]:
        roots = worker_entrypoints(program)
        if not roots:
            return []
        reach = program.reachable_from(roots)
        out: list[Diagnostic] = []
        for qualname, path in sorted(reach.items()):
            fn = program.functions[qualname]
            if fn.name not in SPAWN_BANNED_NAMES or qualname in roots:
                continue
            # Anchor the finding at the first call edge out of the
            # entrypoint on the witness path: that is the reviewable line.
            caller = program.functions[path[0]]
            site = next(
                (c for c in caller.calls if path[1] in c.callees), None
            ) if len(path) > 1 else None
            line = site.line if site else caller.lineno
            col = site.col if site else 0
            out.append(program_diagnostic(
                self, caller, line, col,
                f"worker entrypoint `{caller.name}` reaches parent-side "
                f"construction `{fn.name}` "
                f"(call chain: {format_path(program, path)}) — spawn "
                "workers must attach to the published store, never "
                "rebuild instances, meshes, partitions, or warm caches",
            ))
        return out
