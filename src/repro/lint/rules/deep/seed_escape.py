"""RPL105 — seed-escape: seeds reach RNGs only through the chokepoint.

RPL001 bans *direct* RNG construction outside ``util/rng.py`` — but it
is file-local, so it cannot see a seed value handed to a helper in
another module that constructs ``default_rng(seed)`` there (the helper's
file is flagged, but the flow that smuggled an untyped config seed into
it is not, and a pragma on the helper would silence every caller at
once).  This rule tracks the flow:

**A seed-carrying value (a ``seed`` variable/attribute/key, or any
``seed=`` keyword) must not be passed to a function that — transitively
— constructs an RNG outside the chokepoint.**  The sanctioned sinks are
``repro.util.rng`` (``as_rng`` / ``spawn_rng`` / ``spawn_rngs``), whose
``SeedSequence`` spawning is what makes streams independent and typed,
and the fuzz plane (which owns its campaign entropy).  Everything else
that wants randomness from a seed must route through them, so every draw
in the library stays replayable from a caller-supplied seed.
"""

from __future__ import annotations

from repro.lint.dataflow import unsafe_rng_functions
from repro.lint.graph import Program
from repro.lint.rules.base import Diagnostic, register
from repro.lint.rules.deep.base import DeepRule, program_diagnostic

__all__ = ["SeedEscapeRule"]


@register
class SeedEscapeRule(DeepRule):
    code = "RPL105"
    name = "seed-escape"
    description = (
        "seed values must not flow into functions that construct RNGs "
        "outside the repro.util.rng chokepoint"
    )

    def check_program(self, program: Program) -> list[Diagnostic]:
        unsafe = unsafe_rng_functions(program)
        out: list[Diagnostic] = []
        for qualname in sorted(program.functions):
            fn = program.functions[qualname]
            for site in fn.calls:
                if not site.passes_seed:
                    continue
                sinks = sorted({
                    program.functions[c].name for c in site.callees
                    if unsafe.get(c, False)
                })
                if not sinks:
                    continue
                names = ", ".join(f"`{s}`" for s in sinks)
                out.append(program_diagnostic(
                    self, fn, site.line, site.col,
                    f"seed value flows from `{fn.name}` into {names}, "
                    "which constructs an RNG outside the "
                    "repro.util.rng chokepoint — route the seed through "
                    "spawn_rng/as_rng so the stream stays typed and "
                    "replayable",
                ))
        return out
