"""RPL103 — engine-parity propagation across the call graph.

File-local RPL002 checks a hard-coded list of scheduling entry points;
anything not on the list — a new helper that grows an ``engine``
parameter, a cross-file wrapper — silently escapes it.  This rule
derives the obligation from the program itself:

**If a function accepts ``engine=`` and calls another function that
accepts ``engine=`` (resolved through the call graph: direct, method,
registry fan-out, or dynamic fallback), the selector must be forwarded**
— as ``engine=engine``, as a bare positional ``engine`` (the
``resolve_engine(engine, ...)`` shape), or implicitly via ``**kwargs``.
A call that drops it pins the callee to its default and quietly reverts
the caller's engine choice; the engine-equivalence suite cannot catch
that because the engines agree on results by contract.

Registry fan-out calls (``algo = get_algorithm(name); algo(...)``) count
when any registered algorithm accepts ``engine=`` — they all do, which
is exactly why the selector must survive dynamic dispatch too.
"""

from __future__ import annotations

from repro.lint.graph import Program
from repro.lint.rules.base import Diagnostic, register
from repro.lint.rules.deep.base import DeepRule, program_diagnostic

__all__ = ["EnginePropagationRule"]


@register
class EnginePropagationRule(DeepRule):
    code = "RPL103"
    name = "engine-propagation"
    description = (
        "a function accepting engine= must forward the selector to every "
        "callee (resolved across files) that also accepts engine="
    )

    def check_program(self, program: Program) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for qualname in sorted(program.functions):
            fn = program.functions[qualname]
            if not fn.accepts_engine:
                continue
            for site in fn.calls:
                takers = [
                    c for c in site.callees
                    if c in program.functions
                    and program.functions[c].accepts_engine
                ]
                if not takers:
                    continue
                if site.has_star_kwargs or site.engine_arg == "ident":
                    continue
                callee_names = ", ".join(sorted(
                    f"`{program.functions[c].name}`" for c in set(takers)
                ))
                shape = (
                    "pins a different value" if site.engine_arg is not None
                    else "does not forward engine=engine"
                )
                out.append(program_diagnostic(
                    self, fn, site.line, site.col,
                    f"`{fn.name}` accepts engine= but this call to "
                    f"{callee_names} {shape} — the caller's engine choice "
                    "is silently dropped on this path",
                ))
        return out
