"""Base class for whole-program (interprocedural) lint rules.

A :class:`DeepRule` shares the registry, codes, and pragma machinery
with the file-local rules, but its unit of analysis is a built
:class:`~repro.lint.graph.Program` instead of one file's AST.  The
file-local engine skips deep rules (their :meth:`check` is an empty
no-op); the deep driver (:mod:`repro.lint.deep`) runs
:meth:`check_program` once per program and suppresses findings through
the same ``# repro-lint: disable=RPLxxx -- why`` pragmas, matched by
file and line.
"""

from __future__ import annotations

from repro.lint.graph import FunctionInfo, Program
from repro.lint.rules.base import Diagnostic, FileContext, Rule

__all__ = ["DeepRule", "program_diagnostic"]


def program_diagnostic(
    rule: "DeepRule", fn: FunctionInfo, line: int, col: int, message: str
) -> Diagnostic:
    """A finding anchored at ``line:col`` of the file owning ``fn``."""
    return Diagnostic(
        path=fn.path, line=line, col=col, rule=rule.code, message=message
    )


class DeepRule(Rule):
    """Whole-program rule: analyse a :class:`Program`, not a file."""

    #: Marks the rule for the deep pass; the file-local engine skips it.
    deep = True

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        return []  # file-local pass: nothing to do

    def check_program(self, program: Program) -> list[Diagnostic]:
        raise NotImplementedError
