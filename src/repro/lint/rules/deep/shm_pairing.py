"""RPL102 — shm lifecycle pairing, interprocedurally.

File-local RPL003 accepts any ``SharedMemory`` creation inside a class
whose *body text* mentions ``.close()`` and ``.unlink()``.  That
heuristic has two blind spots this rule closes with the call graph:

1. **Pairing must be reachable, not just present.**  For every owning
   creation (``create=True``), a ``.close()`` *and* a ``.unlink()`` call
   must be reachable from the creation's owner scope — the enclosing
   class's methods and everything they call (so cleanup delegated to a
   helper function counts, which RPL003 could not see), or the enclosing
   function's transitive closure for a free-function creation.

2. **The handle must not dangle across an unprotected window.**  Between
   the creation and the point where the handle escapes into its owner
   (``return cls(shm, ...)``, ``self._shm = shm``), any statement that
   can raise leaks the segment: nothing has registered cleanup yet.  A
   creation with such a gap must sit inside a ``try`` whose handler or
   ``finally`` covers it (or use a ``with``).  This is the conservative
   static reading of "the create dominates a close+unlink on all
   non-exceptional paths".

Attach-only handles (no ``create=True``) never own the segment and are
out of scope here — RPL003 still governs their view writability.
"""

from __future__ import annotations

from repro.lint.dataflow import pairing_scope
from repro.lint.graph import Program
from repro.lint.rules.base import Diagnostic, register
from repro.lint.rules.deep.base import DeepRule, program_diagnostic

__all__ = ["ShmPairingRule"]


@register
class ShmPairingRule(DeepRule):
    code = "RPL102"
    name = "shm-pairing"
    description = (
        "every SharedMemory create=True must reach both close() and "
        "unlink() from its owner scope, and must not hold an unprotected "
        "handle across statements that can raise"
    )

    def check_program(self, program: Program) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for qualname in sorted(program.functions):
            fn = program.functions[qualname]
            for create in fn.shm_creates:
                if not create.owning or create.in_with:
                    continue
                scope = pairing_scope(program, fn)
                has_close = any(
                    program.functions[q].closes for q in scope
                    if q in program.functions
                )
                has_unlink = any(
                    program.functions[q].unlinks for q in scope
                    if q in program.functions
                )
                if not (has_close and has_unlink):
                    missing = " and ".join(
                        name for name, ok in
                        (("close()", has_close), ("unlink()", has_unlink))
                        if not ok
                    )
                    out.append(program_diagnostic(
                        self, fn, create.line, create.col,
                        f"SharedMemory created in `{fn.name}` but no "
                        f"{missing} is reachable from its owner scope — "
                        "the segment outlives the process in /dev/shm",
                    ))
                    continue
                if create.gap and not create.protected:
                    out.append(program_diagnostic(
                        self, fn, create.line, create.col,
                        f"`{fn.name}` runs statements between this "
                        "SharedMemory creation and the handle's escape to "
                        "its owner — an exception in that window leaks "
                        "the segment; wrap the window in try/except (or "
                        "finally) that closes and unlinks, or publish "
                        "via a `with` block",
                    ))
        return out
