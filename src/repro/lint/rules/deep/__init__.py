"""Whole-program (interprocedural) rule pack — RPL101-105.

Imported by :mod:`repro.lint.rules` so the deep rules register alongside
the file-local ones; the file-local engine skips them (``deep = True``)
and the deep driver (:mod:`repro.lint.deep`) runs their
:meth:`~repro.lint.rules.deep.base.DeepRule.check_program` over a built
:class:`~repro.lint.graph.Program`.
"""

from repro.lint.rules.deep.base import DeepRule

# Importing the rule modules registers them.
from repro.lint.rules.deep import engine_propagation as _engine  # noqa: F401
from repro.lint.rules.deep import seed_escape as _seed  # noqa: F401
from repro.lint.rules.deep import shm_pairing as _shm  # noqa: F401
from repro.lint.rules.deep import span_safety as _span  # noqa: F401
from repro.lint.rules.deep import spawn_safety as _spawn  # noqa: F401

__all__ = ["DeepRule"]
