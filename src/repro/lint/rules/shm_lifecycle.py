"""RPL003 — shared-memory lifecycle.

The parallel plane's single-owner protocol (``repro.parallel.shm_store``)
hangs on two properties that no unit test can prove in general:

1. **Every segment gets unlinked.**  A ``SharedMemory`` handle created
   outside a context manager and outside a class that implements both
   ``close()`` and ``unlink()`` paths leaks a ``/dev/shm`` file on any
   exception between creation and cleanup.  The rule demands one of:

   * the creation is the context expression of a ``with`` statement, or
   * the creation happens inside a class whose body (any method) calls
     both ``.close()`` and ``.unlink()`` — the owning-store pattern.

2. **Attached views are read-only.**  A zero-copy ``np.ndarray`` built
   over ``buffer=shm.buf`` is writeable by default; a stray write from a
   worker corrupts every other worker's input *silently*.  Any
   ``np.ndarray(..., buffer=...)`` construction must therefore happen in
   a function that explicitly decides writability — an assignment to
   ``.flags.writeable`` or a ``.setflags(write=...)`` call — so the
   read-only choice is visible at the construction site.  The runtime
   counterpart is the ``REPRO_SANITIZE=1`` hook
   (:mod:`repro.parallel.sanitize`), which poisons attached views and
   verifies segment digests.

Worker-side *attach* handles that deliberately never unlink (ownership
stays with the publishing parent) are the intended use of the
``# repro-lint: disable=RPL003 -- ...`` pragma.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import (
    Diagnostic,
    FileContext,
    Rule,
    class_ancestor,
    enclosing_function,
    in_with_item,
    register,
)

__all__ = ["ShmLifecycleRule"]


def _class_has_close_and_unlink(cls: ast.ClassDef) -> bool:
    seen: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("close", "unlink"):
                seen.add(node.func.attr)
    return {"close", "unlink"} <= seen


def _decides_writability(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr == "writeable"
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr == "flags"):
                    return True
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "setflags"
                and any(kw.arg == "write" for kw in node.keywords)):
            return True
    return False


@register
class ShmLifecycleRule(Rule):
    code = "RPL003"
    name = "shm-lifecycle"
    description = (
        "SharedMemory creation needs a context manager or an owning class "
        "with close+unlink; buffer-backed ndarrays must set writability "
        "explicitly"
    )

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            full = ctx.resolve(node.func)
            if full is None:
                continue
            if full.endswith(".SharedMemory") or full == "SharedMemory":
                out.extend(self._check_creation(ctx, node))
            elif full in ("numpy.ndarray", "numpy.frombuffer"):
                out.extend(self._check_view(ctx, node))
        return out

    def _check_creation(self, ctx: FileContext, node: ast.Call) -> list[Diagnostic]:
        if in_with_item(ctx, node):
            return []
        cls = class_ancestor(ctx, node)
        if cls is not None and _class_has_close_and_unlink(cls):
            return []
        return [ctx.diagnostic(
            self, node,
            "SharedMemory created outside a `with` block and outside a "
            "class with close()+unlink() paths — the segment leaks on any "
            "exception before cleanup",
        )]

    def _check_view(self, ctx: FileContext, node: ast.Call) -> list[Diagnostic]:
        has_buffer = any(kw.arg == "buffer" for kw in node.keywords) or (
            ctx.resolve(node.func) == "numpy.frombuffer"
        )
        if not has_buffer:
            return []
        fn = enclosing_function(ctx, node)
        if fn is not None and _decides_writability(fn):
            return []
        return [ctx.diagnostic(
            self, node,
            "ndarray view over a shared buffer without an explicit "
            "writability decision — set `.flags.writeable` (False outside "
            "the owning store) where the view is built",
        )]
