"""RPL005 — hot-path hygiene.

``fast_scheduler.py``, ``list_scheduler.py``, and
``parallel/dispatcher.py`` are the three files the benchmark baseline
(``BENCH_4.json``) times; a single accidentally-quadratic idiom there
erases the engine's measured 2x headroom long before any test fails.
Three APIs are banned in those files because each hides an O(n) copy or
shift inside an innocent-looking call:

* ``np.append`` — reallocates and copies the whole array per call (the
  sorted-pool engine's one batched ``np.insert`` per *step* is the
  sanctioned pattern);
* ``list.insert(0, ...)`` — shifts every element; use ``append`` plus a
  final ``reverse``, or ``collections.deque``;
* ``np.concatenate`` / ``np.hstack`` / ``np.vstack`` **inside a loop** —
  repeated whole-array copies; build a list and concatenate once after
  the loop.

The rule is deliberately file-scoped: these idioms are fine in cold
paths (reports, figure drivers), and banning them globally would only
breed pragmas.
"""

from __future__ import annotations

import ast
import posixpath

from repro.lint.rules.base import (
    Diagnostic,
    FileContext,
    Rule,
    loop_ancestor,
    register,
)

__all__ = ["HotPathRule"]

#: Basenames of the benchmarked hot-path files.
_HOT_FILES = frozenset({
    "fast_scheduler.py",
    "list_scheduler.py",
    "dispatcher.py",
})

_LOOPED_CONCAT = frozenset({
    "numpy.concatenate",
    "numpy.hstack",
    "numpy.vstack",
})


@register
class HotPathRule(Rule):
    code = "RPL005"
    name = "hot-path-hygiene"
    description = (
        "no np.append, list.insert(0, ...), or per-iteration "
        "np.concatenate in the benchmarked scheduler/dispatcher files"
    )

    def applies(self, relpath: str | None) -> bool:
        if relpath is None:
            return False
        return posixpath.basename(relpath) in _HOT_FILES

    def check(self, ctx: FileContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            full = ctx.resolve(node.func)
            if full == "numpy.append":
                out.append(ctx.diagnostic(
                    self, node,
                    "np.append copies the whole array per call; batch with "
                    "a python list (or one np.insert per step) instead",
                ))
            elif full in _LOOPED_CONCAT and loop_ancestor(ctx, node) is not None:
                out.append(ctx.diagnostic(
                    self, node,
                    f"{full.split('.')[-1]} inside a loop is quadratic; "
                    "collect parts and concatenate once after the loop",
                ))
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "insert"
                    and not _is_numpy_insert(ctx, node)
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value == 0):
                out.append(ctx.diagnostic(
                    self, node,
                    "list.insert(0, ...) shifts every element; append and "
                    "reverse once, or use collections.deque",
                ))
        return out


def _is_numpy_insert(ctx: FileContext, node: ast.Call) -> bool:
    full = ctx.resolve(node.func)
    return full is not None and full.startswith("numpy.")
