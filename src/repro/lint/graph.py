"""Whole-program model for the deep lint pass: modules, symbols, calls.

The file-local rules (RPL001-006) see one module at a time; the
interprocedural rules (RPL101-105, :mod:`repro.lint.rules.deep`) need to
answer questions like "can ``run_chunk`` reach ``warm_instance``?" or
"does the ``engine=`` selector survive this call chain?".  This module
builds the shared substrate those rules walk:

* an **import graph** over the analyzed files (module → modules it
  imports, restricted to modules inside the program);
* a **symbol table** of every module-level function, class, and method,
  keyed by dotted qualname (``repro.parallel.worker.run_chunk``,
  ``repro.parallel.shm_store.SharedInstanceStore.publish_arrays``);
* an **alias-resolved call graph**: every call site in every function is
  resolved through the existing :class:`~repro.lint.rules.base.FileContext`
  import-alias machinery, module re-exports (``from repro.parallel import
  attach``), ``self.``/``cls.`` method dispatch, and class instantiation
  (an edge to ``__init__``).  Calls that cannot be resolved exactly get
  **conservative fallback edges**: a call through a registry-bound name
  (``algo = get_algorithm(...)``; ``ALGORITHMS[...]``) fans out to every
  registered algorithm, and a method call on an unknown receiver
  (``obj.close()``) fans out to every known method of that name.  Dynamic
  dispatch therefore widens the graph instead of escaping it.

Every fact a deep rule consumes (call sites, per-function dataflow
summaries from :mod:`repro.lint.dataflow`) is plain serialisable data, so
a built :class:`Program` round-trips through JSON.  :func:`load_program`
uses that to cache the build on disk keyed by a blake2b hash of the
source tree — CI restores the cache and skips the whole parse/resolve
phase when no source file changed.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.lint.rules.base import FileContext

__all__ = [
    "GRAPH_FORMAT_VERSION",
    "CallSite",
    "ShmCreate",
    "FunctionInfo",
    "ModuleInfo",
    "Program",
    "build_program",
    "load_program",
    "source_tree_hash",
]

#: Bumped whenever the serialised graph shape changes; a cached graph
#: with a different version is rebuilt, never misread.
GRAPH_FORMAT_VERSION = 1

#: Method names too generic to fan out on for dynamic-dispatch fallback
#: edges — matching every ``.get()`` or ``.append()`` in the tree would
#: connect everything to everything and drown the reachability rules in
#: false paths.  ``close``/``unlink`` are deliberately *kept* out of this
#: set's spirit but handled separately: the shm rules consume them as
#: per-function facts, so the call graph may skip them here.
_FALLBACK_SKIP = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "get", "setdefault", "update", "keys", "values", "items", "copy",
    "add", "discard", "union", "intersection", "sort", "index", "count",
    "join", "split", "rsplit", "strip", "lstrip", "rstrip", "format",
    "startswith", "endswith", "replace", "encode", "decode", "lower",
    "upper", "read", "write", "readline", "readlines", "flush", "close",
    "seek", "tell", "open", "exists", "is_file", "is_dir", "mkdir",
    "result", "cancel", "submit", "shutdown", "register", "unregister",
    "astype", "tolist", "reshape", "ravel", "flatten", "sum", "max",
    "min", "mean", "any", "all", "fill", "item", "nonzero", "argsort",
    "group", "groups", "match", "search", "findall", "put", "commit",
    "execute", "executemany", "fetchone", "fetchall", "cursor",
})

#: Names whose call result / subscript is a registry algorithm (mirrors
#: RPL002's file-local detection, lifted to the program level).
_REGISTRY_SOURCES = frozenset({"get_algorithm", "ALGORITHMS"})

#: Argument expressions treated as carrying a seed value (RPL105).
_SEED_ATTR = "seed"


def _is_seed_expr(node: ast.AST) -> bool:
    """Does this expression syntactically carry a seed value?"""
    if isinstance(node, ast.Name) and node.id == _SEED_ATTR:
        return True
    if isinstance(node, ast.Attribute) and node.attr == _SEED_ATTR:
        return True
    if isinstance(node, ast.Subscript):
        sl = node.slice
        return isinstance(sl, ast.Constant) and sl.value == _SEED_ATTR
    return False


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function, resolution included.

    ``callees`` are program-internal qualnames (empty for calls that
    leave the program, e.g. into numpy); ``kind`` records how resolution
    happened — ``direct`` (exact symbol), ``method`` (``self``/``cls``
    dispatch), ``init`` (class instantiation), ``registry`` (fan-out to
    the algorithm registry), ``fallback`` (fan-out by method name).
    """

    line: int
    col: int
    raw: str | None          # dotted name as written, aliases expanded
    callees: tuple[str, ...]
    kind: str
    kwargs: tuple[str, ...]
    has_star_kwargs: bool
    #: Shape of the ``engine`` argument at this site: ``None`` (absent),
    #: ``"ident"`` (``engine=engine`` or bare ``engine`` positionally),
    #: ``"literal"`` (``engine="heap"``), or ``"other"``.
    engine_arg: str | None
    #: A seed-carrying expression is passed (positionally or by keyword).
    passes_seed: bool
    #: The call is the context expression of a ``with`` statement.
    in_with: bool

    def as_dict(self) -> dict:
        return {
            "line": self.line, "col": self.col, "raw": self.raw,
            "callees": list(self.callees), "kind": self.kind,
            "kwargs": list(self.kwargs),
            "has_star_kwargs": self.has_star_kwargs,
            "engine_arg": self.engine_arg, "passes_seed": self.passes_seed,
            "in_with": self.in_with,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CallSite":
        return cls(
            line=d["line"], col=d["col"], raw=d["raw"],
            callees=tuple(d["callees"]), kind=d["kind"],
            kwargs=tuple(d["kwargs"]),
            has_star_kwargs=d["has_star_kwargs"],
            engine_arg=d["engine_arg"], passes_seed=d["passes_seed"],
            in_with=d["in_with"],
        )


@dataclass(frozen=True)
class ShmCreate:
    """One ``SharedMemory(...)`` creation site and its local context.

    ``owning`` is True only for ``create=True`` sites — the ones whose
    process owns the segment and owes it a close+unlink.  ``gap`` is True
    when statements execute between the creation and the point where the
    handle escapes the function (returned, stored on ``self``, or handed
    to another callable) — the window where an exception leaks the
    segment unless ``protected`` (a ``try`` with a handler or ``finally``
    wraps the window).
    """

    line: int
    col: int
    owning: bool
    in_with: bool
    binding: str | None   # "name:shm" / "attr:_shm" / None
    gap: bool
    protected: bool

    def as_dict(self) -> dict:
        return {
            "line": self.line, "col": self.col, "owning": self.owning,
            "in_with": self.in_with, "binding": self.binding,
            "gap": self.gap, "protected": self.protected,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ShmCreate":
        return cls(
            line=d["line"], col=d["col"], owning=d["owning"],
            in_with=d["in_with"], binding=d["binding"], gap=d["gap"],
            protected=d["protected"],
        )


@dataclass
class FunctionInfo:
    """One analyzed function/method with its dataflow summary."""

    qualname: str
    module: str
    name: str
    class_name: str | None
    path: str
    relpath: str | None
    lineno: int
    params: tuple[str, ...]
    accepts_engine: bool
    has_seed_param: bool
    calls: list[CallSite] = field(default_factory=list)
    shm_creates: list[ShmCreate] = field(default_factory=list)
    #: Receivers of ``.close()`` / ``.unlink()`` calls in this body
    #: (dotted receiver text like ``self._shm`` / ``shm``, or ``""`` for
    #: unresolvable receivers — presence is what the pairing rule needs).
    closes: tuple[str, ...] = ()
    unlinks: tuple[str, ...] = ()
    #: ``(line, col, resolved-name)`` of direct RNG constructions.
    rng_sites: tuple = ()
    #: ``(line, col, in_with)`` of ``obs.span(...)`` creations.
    span_sites: tuple = ()

    def callees(self) -> set[str]:
        out: set[str] = set()
        for site in self.calls:
            out.update(site.callees)
        return out

    def as_dict(self) -> dict:
        return {
            "qualname": self.qualname, "module": self.module,
            "name": self.name, "class_name": self.class_name,
            "path": self.path, "relpath": self.relpath,
            "lineno": self.lineno, "params": list(self.params),
            "accepts_engine": self.accepts_engine,
            "has_seed_param": self.has_seed_param,
            "calls": [c.as_dict() for c in self.calls],
            "shm_creates": [s.as_dict() for s in self.shm_creates],
            "closes": list(self.closes), "unlinks": list(self.unlinks),
            "rng_sites": [list(r) for r in self.rng_sites],
            "span_sites": [list(s) for s in self.span_sites],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionInfo":
        return cls(
            qualname=d["qualname"], module=d["module"], name=d["name"],
            class_name=d["class_name"], path=d["path"],
            relpath=d["relpath"], lineno=d["lineno"],
            params=tuple(d["params"]),
            accepts_engine=d["accepts_engine"],
            has_seed_param=d["has_seed_param"],
            calls=[CallSite.from_dict(c) for c in d["calls"]],
            shm_creates=[ShmCreate.from_dict(s) for s in d["shm_creates"]],
            closes=tuple(d["closes"]), unlinks=tuple(d["unlinks"]),
            rng_sites=tuple(tuple(r) for r in d["rng_sites"]),
            span_sites=tuple(tuple(s) for s in d["span_sites"]),
        )


@dataclass
class ModuleInfo:
    """One analyzed source file."""

    name: str             # dotted module name ("repro.parallel.worker")
    path: str
    relpath: str | None   # package-relative ("parallel/worker.py")
    imports: tuple[str, ...] = ()   # program-internal modules imported

    def as_dict(self) -> dict:
        return {
            "name": self.name, "path": self.path, "relpath": self.relpath,
            "imports": list(self.imports),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleInfo":
        return cls(name=d["name"], path=d["path"], relpath=d["relpath"],
                   imports=tuple(d["imports"]))


class Program:
    """The whole-program view the deep rules operate on."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: Registry fan-out targets (qualnames of registered algorithms).
        self.registry_targets: tuple[str, ...] = ()

    # -- graph queries --------------------------------------------------

    def call_edges(self) -> dict[str, set[str]]:
        """caller qualname → set of callee qualnames."""
        return {q: fn.callees() for q, fn in self.functions.items()}

    def reachable_from(self, roots: list[str]) -> dict[str, list[str]]:
        """BFS closure: reachable qualname → witness call path from a root.

        The witness path (``[root, ..., target]``) is what makes the
        reachability rules' diagnostics actionable — the message can show
        the exact call chain instead of just "somehow reaches".
        """
        edges = self.call_edges()
        paths: dict[str, list[str]] = {}
        frontier: list[str] = []
        for root in roots:
            if root in self.functions and root not in paths:
                paths[root] = [root]
                frontier.append(root)
        while frontier:
            nxt: list[str] = []
            for caller in frontier:
                for callee in sorted(edges.get(caller, ())):
                    # Edges may point at class qualnames (dataclass
                    # instantiation with a generated __init__); only
                    # function nodes are traversable.
                    if callee in self.functions and callee not in paths:
                        paths[callee] = paths[caller] + [callee]
                        nxt.append(callee)
            frontier = nxt
        return paths

    def functions_in_class(self, module: str, class_name: str) -> list[FunctionInfo]:
        return [
            fn for fn in self.functions.values()
            if fn.module == module and fn.class_name == class_name
        ]

    def edges_json(self) -> list[list[str]]:
        """Sorted ``[caller, callee, kind]`` triples (the golden format)."""
        out = set()
        for qualname, fn in self.functions.items():
            for site in fn.calls:
                for callee in site.callees:
                    out.add((qualname, callee, site.kind))
        return [list(t) for t in sorted(out)]

    # -- (de)serialisation ----------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": GRAPH_FORMAT_VERSION,
            "modules": [
                self.modules[name].as_dict() for name in sorted(self.modules)
            ],
            "functions": [
                self.functions[q].as_dict() for q in sorted(self.functions)
            ],
            "registry_targets": list(self.registry_targets),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Program":
        if payload.get("version") != GRAPH_FORMAT_VERSION:
            raise ValueError(
                f"graph cache version {payload.get('version')!r} != "
                f"{GRAPH_FORMAT_VERSION}"
            )
        prog = cls()
        for d in payload["modules"]:
            mod = ModuleInfo.from_dict(d)
            prog.modules[mod.name] = mod
        for d in payload["functions"]:
            fn = FunctionInfo.from_dict(d)
            prog.functions[fn.qualname] = fn
        prog.registry_targets = tuple(payload["registry_targets"])
        return prog


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------

_FIXTURE_RE_LINES = 5


def _module_name(relpath: str | None, path: str) -> str:
    """Dotted module name for a file: ``parallel/worker.py`` →
    ``repro.parallel.worker``; files outside the package use their stem."""
    if relpath is None:
        return os.path.splitext(os.path.basename(path))[0]
    parts = relpath.replace(os.sep, "/").split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = os.path.splitext(parts[-1])[0]
    return ".".join(["repro"] + [p for p in parts if p])


def _receiver_text(node: ast.AST) -> str:
    """Source-ish text of a method-call receiver (``self._shm``, ``shm``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _ModuleAnalysis:
    """Parsed module plus its symbol/alias tables (build-time only)."""

    def __init__(self, path: str, source: str, relpath: str | None) -> None:
        self.path = path
        self.relpath = relpath
        self.tree = ast.parse(source, filename=path)
        self.ctx = FileContext(path=path, relpath=relpath, tree=self.tree,
                               source=source)
        self.name = _module_name(relpath, path)
        #: Module-level defs: local name → ("func"| "class", node)
        self.defs: dict[str, tuple[str, ast.AST]] = {}
        #: class name → {method name → node}
        self.methods: dict[str, dict[str, ast.AST]] = {}
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.defs[node.name] = ("func", node)
            elif isinstance(node, ast.ClassDef):
                self.defs[node.name] = ("class", node)
                table: dict[str, ast.AST] = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        table[item.name] = item
                self.methods[node.name] = table


def _scan_fixture_path(source: str) -> str | None:
    import re

    pattern = re.compile(r"#\s*repro-lint-fixture:\s*path=(?P<path>\S+)")
    for line in source.splitlines()[:_FIXTURE_RE_LINES]:
        m = pattern.search(line)
        if m:
            return m.group("path")
    return None


def source_tree_hash(files: list[str]) -> str:
    """blake2b over (sorted relative names, contents) of ``files``.

    The cache key for a built program: any content or file-set change
    produces a different digest, so a stale graph can never be loaded for
    a changed tree.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(f"v{GRAPH_FORMAT_VERSION}".encode())
    for path in sorted(files):
        h.update(b"\x00")
        h.update(os.path.basename(path).encode())
        try:
            with open(path, "rb") as fh:
                h.update(fh.read())
        except OSError:
            h.update(b"<unreadable>")
    return h.hexdigest()


def build_program(files: list[str]) -> Program:
    """Parse ``files`` and build the resolved whole-program graph."""
    analyses: list[_ModuleAnalysis] = []
    for path in files:
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError:
            continue
        relpath = _scan_fixture_path(source)
        if relpath is None:
            from repro.lint.engine import package_relpath

            relpath = package_relpath(path)
        try:
            analyses.append(_ModuleAnalysis(path, source, relpath))
        except SyntaxError:
            continue  # the file-local pass reports the syntax error

    by_name = {a.name: a for a in analyses}
    prog = Program()

    # Pass 1: symbols, re-export tables, registry targets.
    #   symbol index: dotted name → qualname for functions/classes/methods
    symbols: dict[str, str] = {}
    #   re-exports: "module.local" → alias target dotted name
    reexports: dict[str, str] = {}
    #   method name → [qualnames] for fallback dispatch
    methods_by_name: dict[str, list[str]] = {}
    registry_targets: set[str] = set()

    for a in analyses:
        for local, (kind, node) in a.defs.items():
            dotted = f"{a.name}.{local}"
            symbols[dotted] = dotted
            if kind == "class":
                for mname in a.methods[local]:
                    symbols[f"{dotted}.{mname}"] = f"{dotted}.{mname}"
        for local, target in a.ctx.aliases.items():
            reexports[f"{a.name}.{local}"] = target

    def resolve_symbol(dotted: str | None) -> str | None:
        """Program qualname for a dotted name, chasing re-exports."""
        seen = set()
        while dotted and dotted not in seen:
            seen.add(dotted)
            if dotted in symbols:
                return symbols[dotted]
            if dotted in reexports:
                dotted = reexports[dotted]
                continue
            # "module.attr" where module itself was re-exported whole.
            head, _, tail = dotted.rpartition(".")
            if head in reexports and tail:
                dotted = f"{reexports[head]}.{tail}"
                continue
            return None
        return None

    # Registry fan-out targets: values of a module-level ALGORITHMS dict
    # (plain or annotated assignment — `ALGORITHMS: dict[...] = {...}`).
    for a in analyses:
        for node in a.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            if not (any(isinstance(t, ast.Name) and t.id == "ALGORITHMS"
                        for t in targets)
                    and isinstance(node.value, ast.Dict)):
                continue
            for value in node.value.values:
                target = value
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id == "partial" and value.args):
                    target = value.args[0]
                dotted = a.ctx.resolve(target)
                if dotted and "." not in dotted:
                    dotted = f"{a.name}.{dotted}"
                q = resolve_symbol(dotted)
                if q:
                    registry_targets.add(q)
    prog.registry_targets = tuple(sorted(registry_targets))

    # Pass 2: per-function analysis.
    for a in analyses:
        imported = set()
        for target in a.ctx.aliases.values():
            head = target
            while head:
                if head in by_name:
                    imported.add(head)
                    break
                head, _, _ = head.rpartition(".")
        prog.modules[a.name] = ModuleInfo(
            name=a.name, path=a.path, relpath=a.relpath,
            imports=tuple(sorted(imported - {a.name})),
        )
        for local, (kind, node) in a.defs.items():
            if kind == "func":
                fn = _analyze_function(
                    a, node, qualname=f"{a.name}.{local}", class_name=None,
                    resolve_symbol=resolve_symbol,
                    registry_targets=prog.registry_targets,
                )
                prog.functions[fn.qualname] = fn
            else:
                for mname, mnode in a.methods[local].items():
                    fn = _analyze_function(
                        a, mnode,
                        qualname=f"{a.name}.{local}.{mname}",
                        class_name=local,
                        resolve_symbol=resolve_symbol,
                        registry_targets=prog.registry_targets,
                    )
                    prog.functions[fn.qualname] = fn

    for qualname, fn in prog.functions.items():
        if fn.class_name is not None:
            methods_by_name.setdefault(fn.name, []).append(qualname)

    # Pass 3: fallback edges for still-unresolved method calls.
    for fn in prog.functions.values():
        patched: list[CallSite] = []
        for site in fn.calls:
            if (not site.callees and site.kind == "pending-fallback"
                    and site.raw):
                mname = site.raw.rpartition(".")[2]
                targets = tuple(sorted(
                    q for q in methods_by_name.get(mname, ())
                    if q != fn.qualname
                ))
                patched.append(CallSite(
                    line=site.line, col=site.col, raw=site.raw,
                    callees=targets, kind="fallback" if targets else "external",
                    kwargs=site.kwargs,
                    has_star_kwargs=site.has_star_kwargs,
                    engine_arg=site.engine_arg,
                    passes_seed=site.passes_seed, in_with=site.in_with,
                ))
            elif site.kind == "pending-fallback":
                patched.append(CallSite(
                    line=site.line, col=site.col, raw=site.raw,
                    callees=site.callees, kind="external",
                    kwargs=site.kwargs,
                    has_star_kwargs=site.has_star_kwargs,
                    engine_arg=site.engine_arg,
                    passes_seed=site.passes_seed, in_with=site.in_with,
                ))
            else:
                patched.append(site)
        fn.calls = patched
    return prog


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = fn.args
    every = args.posonlyargs + args.args + args.kwonlyargs
    names = [a.arg for a in every]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _registry_bound_names(fn: ast.AST) -> set[str]:
    """Local names bound from ``get_algorithm(...)`` / ``ALGORITHMS[...]``."""
    bound: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        source = None
        if isinstance(value, ast.Call):
            source = value.func
        elif isinstance(value, ast.Subscript):
            source = value.value
        if source is None:
            continue
        name = source.attr if isinstance(source, ast.Attribute) else (
            source.id if isinstance(source, ast.Name) else None
        )
        if name in _REGISTRY_SOURCES:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


def _engine_arg_shape(call: ast.Call) -> str | None:
    """Shape of the engine argument at this call site (see CallSite)."""
    for kw in call.keywords:
        if kw.arg == "engine":
            if isinstance(kw.value, ast.Name) and kw.value.id == "engine":
                return "ident"
            if isinstance(kw.value, ast.Constant):
                return "literal"
            return "other"
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == "engine":
            return "ident"
    return None


def _stmt_ancestor(ctx: FileContext, node: ast.AST,
                   body_fn: ast.AST) -> ast.stmt | None:
    """The statement directly inside ``body_fn``'s (possibly nested)
    block structure that contains ``node``."""
    cur: ast.AST | None = node
    while cur is not None:
        parent = ctx.parents.get(cur)
        if isinstance(cur, ast.stmt) and parent is not None:
            return cur
        cur = parent
    return None


def _protected_by_try(ctx: FileContext, node: ast.AST, fn: ast.AST) -> bool:
    """Is ``node`` inside a ``try`` (with handler or finally) within ``fn``?"""
    cur = ctx.parents.get(node)
    while cur is not None and cur is not fn:
        if isinstance(cur, ast.Try) and (cur.handlers or cur.finalbody):
            return True
        cur = ctx.parents.get(cur)
    return False


def _binding_of(ctx: FileContext, call: ast.Call) -> str | None:
    """How the call's result is bound: ``name:x`` / ``attr:_shm`` / None."""
    parent = ctx.parents.get(call)
    # Unwrap trivial wrappers up to the assignment statement.
    while parent is not None and not isinstance(parent, ast.stmt):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return None
        parent = ctx.parents.get(parent)
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        target = parent.targets[0]
        if isinstance(target, ast.Name):
            return f"name:{target.id}"
        if isinstance(target, ast.Attribute):
            return f"attr:{target.attr}"
    return None


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _cleanup_guard(stmt: ast.stmt, name: str) -> bool:
    """Is ``stmt`` a ``try`` whose handler/finally closes AND unlinks ``name``?

    Such a statement is the *protection* for the creation window, not part
    of it — work inside its body cannot leak the segment.
    """
    if not isinstance(stmt, ast.Try):
        return False
    seen: set[str] = set()
    for cleanup in [*stmt.handlers, *stmt.finalbody]:
        for sub in ast.walk(cleanup):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == name
                    and sub.func.attr in ("close", "unlink")):
                seen.add(sub.func.attr)
    return {"close", "unlink"} <= seen


def _escape_gap(ctx: FileContext, call: ast.Call,
                fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Statements run between a creation and its handle's escape?

    The creation's enclosing statement is located inside its block; the
    following sibling statements are scanned until one *escapes* the
    bound handle — returns it, stores it on an attribute, or passes it to
    a callable (ownership transfer, e.g. ``cls(shm, manifest)``).  Any
    non-escaping statement before that point is "work done while holding
    an unprotected handle": an exception there leaks the segment.
    """
    binding = _binding_of(ctx, call)
    if binding is None:
        parent = ctx.parents.get(call)
        if isinstance(parent, (ast.Call, ast.Return)):
            # Created directly inside the escaping expression
            # (``return cls(SharedMemory(...))``) — ownership transfers
            # atomically, no window.
            return False
        return True  # discarded handle: the window never closes
    if not binding.startswith("name:"):
        # Bound straight onto self/attribute — the owner object holds it
        # from the first moment; its close/unlink paths are the pairing
        # clause's job, not the window clause's.
        return False
    name = binding.split(":", 1)[1]
    stmt = _stmt_ancestor(ctx, call, fn)
    if stmt is None:
        return False
    block = ctx.parents.get(stmt)
    body = getattr(block, "body", None)
    if not isinstance(body, list) or stmt not in body:
        return False
    following = body[body.index(stmt) + 1:]
    unprotected = 0
    for nxt in following:
        escapes = False
        if isinstance(nxt, ast.Return) and nxt.value is not None:
            escapes = name in _names_in(nxt.value)
        elif isinstance(nxt, ast.Assign):
            if any(isinstance(t, ast.Attribute) for t in nxt.targets):
                escapes = name in _names_in(nxt.value)
        if not escapes:
            for sub in ast.walk(nxt):
                if isinstance(sub, ast.Call) and any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in sub.args
                ):
                    escapes = True
                    break
        if escapes:
            return unprotected > 0
        if not _cleanup_guard(nxt, name):
            unprotected += 1
    # Never escapes: any unguarded remainder of the block is the window.
    return unprotected > 0


def _analyze_function(
    a: _ModuleAnalysis,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    class_name: str | None,
    resolve_symbol,
    registry_targets: tuple[str, ...],
) -> FunctionInfo:
    ctx = a.ctx
    params = _param_names(node)
    info = FunctionInfo(
        qualname=qualname, module=a.name, name=node.name,
        class_name=class_name, path=a.path, relpath=a.relpath,
        lineno=node.lineno, params=params,
        accepts_engine="engine" in params,
        has_seed_param="seed" in params,
    )
    registry_locals = _registry_bound_names(node)
    closes: list[str] = []
    unlinks: list[str] = []
    rng_sites: list[tuple] = []
    span_sites: list[tuple] = []

    from repro.lint.rules.base import in_with_item

    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        raw = ctx.resolve(func)
        kwargs = tuple(kw.arg for kw in sub.keywords if kw.arg is not None)
        has_star = any(kw.arg is None for kw in sub.keywords)
        passes_seed = any(_is_seed_expr(arg) for arg in sub.args) or any(
            kw.arg == _SEED_ATTR or _is_seed_expr(kw.value)
            for kw in sub.keywords if kw.arg is not None
        )
        in_with = in_with_item(ctx, sub)
        engine_arg = _engine_arg_shape(sub)

        # close/unlink facts (shm pairing), span + rng sites.
        if isinstance(func, ast.Attribute):
            if func.attr == "close":
                closes.append(_receiver_text(func.value))
            elif func.attr == "unlink":
                unlinks.append(_receiver_text(func.value))
        if raw is not None:
            last = raw.rpartition(".")[2]
            if raw in ("numpy.random.default_rng", "numpy.random.RandomState",
                       "numpy.random.Generator", "random.Random",
                       "numpy.random.seed"):
                rng_sites.append((sub.lineno, sub.col_offset, raw))
            if (raw.endswith(".span") and ("obs" in raw or "tracer" in raw)
                    ) or raw == "repro.obs.span":
                span_sites.append((sub.lineno, sub.col_offset, in_with))

        # SharedMemory creation sites.
        if raw is not None and (raw.endswith(".SharedMemory")
                                or raw == "SharedMemory"):
            owning = any(
                kw.arg == "create" and isinstance(kw.value, ast.Constant)
                and bool(kw.value.value)
                for kw in sub.keywords
            )
            info.shm_creates.append(ShmCreate(
                line=sub.lineno, col=sub.col_offset, owning=owning,
                in_with=in_with, binding=_binding_of(ctx, sub),
                gap=_escape_gap(ctx, sub, node),
                protected=_protected_by_try(ctx, sub, node),
            ))

        # -- call-edge resolution ---------------------------------------
        callees: tuple[str, ...] = ()
        kind = "external"
        if isinstance(func, ast.Name) and func.id in registry_locals:
            callees, kind = registry_targets, "registry"
        elif raw is not None:
            dotted = raw
            if "." not in dotted:
                # Bare local name → same-module symbol (aliases already
                # expanded names imported from elsewhere).
                dotted = f"{a.name}.{raw}"
            elif dotted.startswith("self.") and class_name is not None:
                dotted = f"{a.name}.{class_name}.{dotted[5:]}"
            elif dotted.startswith("cls.") and class_name is not None:
                dotted = f"{a.name}.{class_name}.{dotted[4:]}"
            q = resolve_symbol(dotted)
            if q is None and raw is not None and "." not in raw:
                q = resolve_symbol(raw)
            if q is not None:
                # Class → constructor edge (instantiation).
                init = resolve_symbol(f"{q}.__init__")
                if init is not None and q not in (qualname,):
                    # q is a class with an __init__ → edge to __init__;
                    # otherwise q is the function/method itself.
                    if f"{q}.__init__" == init:
                        callees, kind = (init,), "init"
                    else:
                        callees, kind = (q,), "direct"
                else:
                    is_self = raw.startswith(("self.", "cls."))
                    callees, kind = (q,), ("method" if is_self else "direct")
            elif isinstance(func, ast.Attribute):
                kind = "pending-fallback"
        elif isinstance(func, ast.Attribute):
            kind = "pending-fallback"
            raw_recv = _receiver_text(func.value)
            raw = f"{raw_recv}.{func.attr}" if raw_recv else func.attr

        # `cls(...)` inside a classmethod instantiates the own class.
        if (isinstance(func, ast.Name) and func.id == "cls"
                and class_name is not None):
            init = resolve_symbol(f"{a.name}.{class_name}.__init__")
            if init is not None:
                callees, kind = (init,), "init"

        if kind in ("pending-fallback",):
            last = (raw or "").rpartition(".")[2]
            if not last or last in _FALLBACK_SKIP or last.startswith("__"):
                kind = "external"

        info.calls.append(CallSite(
            line=sub.lineno, col=sub.col_offset, raw=raw,
            callees=callees, kind=kind, kwargs=kwargs,
            has_star_kwargs=has_star, engine_arg=engine_arg,
            passes_seed=passes_seed, in_with=in_with,
        ))

    info.closes = tuple(closes)
    info.unlinks = tuple(unlinks)
    info.rng_sites = tuple(rng_sites)
    info.span_sites = tuple(span_sites)
    return info


# ---------------------------------------------------------------------------
# disk cache
# ---------------------------------------------------------------------------


def load_program(files: list[str], cache_dir: str | None = None) -> Program:
    """Build the program, consulting/refreshing a JSON disk cache.

    With ``cache_dir`` set, a graph whose source-tree hash matches is
    loaded instead of rebuilt (CI restores the directory across runs
    keyed on the same hash, so an unchanged tree never pays the
    parse/resolve cost twice).  Corrupt or version-skewed cache entries
    are ignored and overwritten, never trusted.
    """
    if cache_dir is None:
        return build_program(files)
    digest = source_tree_hash(files)
    path = os.path.join(cache_dir, f"deepgraph-{digest}.json")
    try:
        with open(path, encoding="utf-8") as fh:
            return Program.from_json(json.load(fh))
    except (OSError, ValueError, KeyError, json.JSONDecodeError):
        pass
    prog = build_program(files)
    try:
        os.makedirs(cache_dir, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(prog.to_json(), fh, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        pass  # caching is best-effort; the build result is what matters
    return prog
