"""Round-robin tournaments: all algorithms, all pairs, one table.

Built on :func:`repro.analysis.compare.compare_pair`; every pair of
algorithms plays seed-paired trials and the results aggregate into a
win-rate matrix plus a ranking by mean makespan — the
"who-actually-wins" view that single benchmarks can't give.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.compare import compare_pair, sample_algorithm
from repro.core.instance import SweepInstance
from repro.util.errors import ReproError

__all__ = ["tournament", "format_tournament"]


def tournament(
    inst: SweepInstance,
    algorithms: list[str],
    m: int,
    n_seeds: int = 8,
    seed=0,
) -> dict:
    """Run a full round-robin over ``algorithms``.

    Returns ``{"ranking": [...], "matrix": {(a, b): result}}`` where the
    ranking lists (algorithm, mean makespan) best first and the matrix
    holds each ordered pair's :func:`compare_pair` result.
    """
    if len(algorithms) < 2:
        raise ReproError("a tournament needs at least two algorithms")
    means = {
        name: sample_algorithm(inst, name, m, n_seeds=n_seeds, seed=seed)
        .makespans.mean()
        for name in algorithms
    }
    ranking = sorted(means.items(), key=lambda kv: kv[1])
    matrix = {}
    for i, a in enumerate(algorithms):
        for b in algorithms[i + 1 :]:
            matrix[(a, b)] = compare_pair(inst, a, b, m, n_seeds=n_seeds, seed=seed)
    return {"ranking": ranking, "matrix": matrix}


def format_tournament(result: dict) -> str:
    """Render a tournament as ranking + significant-edge list."""
    lines = ["ranking (mean makespan, best first):"]
    for name, mean in result["ranking"]:
        lines.append(f"  {name:32s} {mean:10.1f}")
    lines.append("")
    lines.append("pairwise (significant edges only):")
    any_edge = False
    for (a, b), r in result["matrix"].items():
        if not r["significant"]:
            continue
        any_edge = True
        winner, loser = (a, b) if r["mean_diff"] < 0 else (b, a)
        lines.append(
            f"  {winner} beats {loser}: mean diff {abs(r['mean_diff']):.1f}, "
            f"record {max(r['a_wins'], r['b_wins'])}-{r['ties']}-"
            f"{min(r['a_wins'], r['b_wins'])}"
        )
    if not any_edge:
        lines.append("  (none — all pairs statistically tied)")
    return "\n".join(lines)
