"""Schedule quality metrics used throughout the experiment harness.

The paper's plots normalise makespan by the average-load lower bound
``nk/m``; :func:`approx_ratio` reproduces that, while
:func:`summarize_schedule` collects everything one experiment row needs
(makespan, ratio, C1, C2, idle fraction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.cost import c2_cost, interprocessor_edges
from repro.core.lower_bounds import average_load_lb, combined_lower_bound
from repro.core.schedule import Schedule

__all__ = [
    "approx_ratio",
    "speedup",
    "efficiency",
    "ScheduleSummary",
    "summarize_schedule",
    "lemma2_max_copies_per_layer",
    "lemma3_max_tasks_per_proc_layer",
]


def approx_ratio(schedule: Schedule, bound: str = "avg_load") -> float:
    """Makespan over a lower bound on OPT (>= true approximation factor).

    ``bound="avg_load"`` uses ``nk/m`` (the paper's choice);
    ``bound="combined"`` uses ``max(nk/m, k, critical path)``.
    """
    if bound == "avg_load":
        lb = average_load_lb(schedule.instance, schedule.m)
    elif bound == "combined":
        lb = combined_lower_bound(schedule.instance, schedule.m)
    else:
        raise ValueError(f"unknown bound {bound!r}")
    if lb == 0:
        return 1.0
    return schedule.makespan / lb


def speedup(schedule: Schedule) -> float:
    """Serial time ``n*k`` over the parallel makespan."""
    if schedule.makespan == 0:
        return 1.0
    return schedule.instance.n_tasks / schedule.makespan


def efficiency(schedule: Schedule) -> float:
    """Speedup per processor (1.0 = perfect linear scaling)."""
    return speedup(schedule) / schedule.m


@dataclass
class ScheduleSummary:
    """One experiment row: identity, quality, and communication costs."""

    algorithm: str
    mesh: str
    n_cells: int
    k: int
    m: int
    makespan: int
    lower_bound: int
    ratio: float
    c1: int
    c1_fraction: float
    c2: int
    idle_fraction: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def summarize_schedule(schedule: Schedule, with_comm: bool = True) -> ScheduleSummary:
    """Collect the standard metrics for one schedule."""
    inst = schedule.instance
    lb = average_load_lb(inst, schedule.m)
    total_edges = sum(g.num_edges for g in inst.dags)
    if with_comm:
        c1 = interprocessor_edges(inst, schedule.assignment)
        c2 = c2_cost(schedule)
    else:
        c1 = c2 = 0
    return ScheduleSummary(
        algorithm=str(schedule.meta.get("algorithm", "?")),
        mesh=inst.name,
        n_cells=inst.n_cells,
        k=inst.k,
        m=schedule.m,
        makespan=schedule.makespan,
        lower_bound=lb,
        ratio=schedule.makespan / lb if lb else 1.0,
        c1=c1,
        c1_fraction=c1 / total_edges if total_edges else 0.0,
        c2=c2,
        idle_fraction=schedule.idle_fraction(),
    )


def lemma2_max_copies_per_layer(inst, delays: np.ndarray) -> int:
    """Empirical Lemma 2 quantity: max copies of any cell in one layer.

    Lemma 2 shows this is ``O(log n)`` w.h.p. under random delays; the
    theory-validation experiment (E8) measures it directly.
    """
    from repro.core.random_delay import delayed_task_layers

    layers = delayed_task_layers(inst, delays)
    cells = np.tile(np.arange(inst.n_cells, dtype=np.int64), inst.k)
    if layers.size == 0:
        return 0
    key = layers * inst.n_cells + cells
    _, counts = np.unique(key, return_counts=True)
    return int(counts.max())


def lemma3_max_tasks_per_proc_layer(
    inst, delays: np.ndarray, assignment: np.ndarray, m: int
) -> int:
    """Empirical Lemma 3 quantity: max tasks of one layer on one processor."""
    from repro.core.layered import layer_makespans
    from repro.core.random_delay import delayed_task_layers

    layers = delayed_task_layers(inst, delays)
    proc = np.tile(np.asarray(assignment), inst.k)
    per_layer = layer_makespans(layers, proc, m)
    return int(per_layer.max()) if per_layer.size else 0


def theorem3_layer_times(inst, m: int, seed=None) -> dict:
    """Empirical Theorem 3 quantities for one Algorithm 3 run.

    Theorem 3 bounds the expected time ``Y_t`` to process layer
    ``L''_t`` of the *preprocessed* combined DAG by
    ``O(mu_t / m + log m * log log log m)``.  Returns the observed
    worst-case "excess" ``max_t (Y_t - |L''_t|/m)`` alongside the
    additive term ``rho = log m * log log log m`` it must be O() of,
    plus the run's totals.
    """
    from repro.core.assignment import random_cell_assignment
    from repro.core.improved import preprocess_levels
    from repro.core.layered import layer_makespans
    from repro.core.random_delay import draw_delays
    from repro.util.rng import as_rng

    rng = as_rng(seed)
    pre = preprocess_levels(inst, m)
    delays = draw_delays(inst.k, rng)
    layers = pre + np.repeat(delays, inst.n_cells)
    assignment = random_cell_assignment(inst.n_cells, m, rng)
    proc = np.tile(assignment, inst.k)
    y = layer_makespans(layers, proc, m).astype(np.float64)
    sizes = np.bincount(layers, minlength=y.size).astype(np.float64)
    excess = y - sizes / m
    # rho = log m * log log log m; the triple log only bites for huge m,
    # floor its argument at e for small processor counts.
    lll = np.log(max(np.log(max(np.log(max(m, 3)), np.e)), np.e))
    rho = float(np.log(max(m, 2)) * lll)
    return {
        "max_excess": float(excess.max()) if excess.size else 0.0,
        "mean_excess": float(excess.mean()) if excess.size else 0.0,
        "rho": rho,
        "makespan": float(y.sum()),
        "n_layers": int(y.size),
    }
