"""Analysis toolkit: paper's probability bounds plus schedule metrics."""

from repro.analysis.ballsbins import (
    chernoff_G,
    bound_F,
    bound_H,
    expected_max_load_bound,
    max_load,
    mean_max_load,
    phi,
)
from repro.analysis.metrics import (
    approx_ratio,
    speedup,
    efficiency,
    ScheduleSummary,
    summarize_schedule,
    lemma2_max_copies_per_layer,
    lemma3_max_tasks_per_proc_layer,
    theorem3_layer_times,
)
from repro.analysis.trace import (
    utilization_profile,
    processor_timeline,
    direction_progress,
    gantt_text,
)
from repro.analysis.compare import (
    AlgorithmSample,
    sample_algorithm,
    bootstrap_ci,
    compare_pair,
)
from repro.analysis.tournament import tournament, format_tournament
from repro.analysis.structure import (
    DirectionStats,
    InstanceStats,
    direction_stats,
    instance_stats,
    parallelism_profile,
)

__all__ = [
    "chernoff_G",
    "bound_F",
    "bound_H",
    "expected_max_load_bound",
    "max_load",
    "mean_max_load",
    "phi",
    "approx_ratio",
    "speedup",
    "efficiency",
    "ScheduleSummary",
    "summarize_schedule",
    "lemma2_max_copies_per_layer",
    "lemma3_max_tasks_per_proc_layer",
    "theorem3_layer_times",
    "utilization_profile",
    "processor_timeline",
    "direction_progress",
    "gantt_text",
    "AlgorithmSample",
    "sample_algorithm",
    "bootstrap_ci",
    "compare_pair",
    "tournament",
    "format_tournament",
    "DirectionStats",
    "InstanceStats",
    "direction_stats",
    "instance_stats",
    "parallelism_profile",
]
