"""Schedule traces: utilization profiles, timelines, text Gantt charts.

Scheduling papers argue about makespans; practitioners debug them with
traces.  These helpers turn a :class:`Schedule` into per-step busy
counts, per-processor timelines, and a terminal-friendly Gantt chart —
small utilities, but they make idle-time structure (the whole difference
between Algorithms 1 and 2) directly visible.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Schedule
from repro.util.errors import ReproError

__all__ = [
    "utilization_profile",
    "processor_timeline",
    "direction_progress",
    "gantt_text",
]


def utilization_profile(schedule: Schedule) -> np.ndarray:
    """Number of busy processors at every time step, shape (makespan,)."""
    if schedule.makespan == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(schedule.start, minlength=schedule.makespan)


def processor_timeline(schedule: Schedule, proc: int) -> np.ndarray:
    """Task id executed by ``proc`` at each step (-1 when idle)."""
    if not 0 <= proc < schedule.m:
        raise ReproError(f"processor {proc} out of range [0, {schedule.m})")
    timeline = np.full(schedule.makespan, -1, dtype=np.int64)
    task_proc = schedule.task_proc()
    mine = np.flatnonzero(task_proc == proc)
    timeline[schedule.start[mine]] = mine
    return timeline


def direction_progress(schedule: Schedule) -> np.ndarray:
    """(makespan, k) tasks of each direction completed per step.

    Shows the pipelining structure: with random delays, direction fronts
    are staggered instead of colliding."""
    inst = schedule.instance
    out = np.zeros((schedule.makespan, inst.k), dtype=np.int64)
    if schedule.makespan == 0:
        return out
    dirs = schedule.instance.task_direction(np.arange(inst.n_tasks))
    np.add.at(out, (schedule.start, dirs), 1)
    return out


def gantt_text(
    schedule,
    max_steps: int = 80,
    max_procs: int = 16,
) -> str:
    """ASCII Gantt chart: one row per processor, one column per step.

    Cells show the direction index of the task running there (mod 10, as
    a digit); ``.`` marks idle.  Accepts both unit-task
    :class:`~repro.core.schedule.Schedule` and duration-carrying
    :class:`~repro.core.timed.TimedSchedule` objects (a timed task fills
    every step of its execution interval).  Long schedules/processor
    counts are truncated with a note — this is a debugging lens, not a
    plot export.
    """
    ms = schedule.makespan
    m = schedule.m
    steps = min(ms, max_steps)
    procs = min(m, max_procs)
    grid = np.full((procs, steps), ".", dtype="<U1")
    task_proc = schedule.task_proc()
    n_tasks = schedule.instance.n_tasks
    dirs = schedule.instance.task_direction(np.arange(n_tasks))
    duration = getattr(schedule, "duration", None)
    if duration is None:
        visible = (task_proc < procs) & (schedule.start < steps)
        grid[task_proc[visible], schedule.start[visible]] = (
            (dirs[visible] % 10).astype("<U1")
        )
    else:
        for tid in range(n_tasks):
            p = task_proc[tid]
            if p >= procs:
                continue
            lo = int(schedule.start[tid])
            hi = min(lo + int(duration[tid]), steps)
            for t in range(lo, hi):
                grid[p, t] = str(int(dirs[tid]) % 10)
    lines = [f"P{p:<3d} " + "".join(grid[p]) for p in range(procs)]
    if ms > steps or m > procs:
        lines.append(
            f"... truncated to {procs}/{m} processors x {steps}/{ms} steps"
        )
    return "\n".join(lines)
