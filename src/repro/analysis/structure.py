"""Instance structure statistics: what makes a mesh hard to sweep.

The paper characterises its meshes only by cell count; these statistics
expose the properties that actually drive schedule quality — per-
direction depth (pipeline length), level-width profiles (available
parallelism), and the width of the union DAG (the best any scheduler
could exploit).  Used by the mesh-inventory benchmark and handy when
tuning a new mesh generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import SweepInstance

__all__ = [
    "DirectionStats",
    "InstanceStats",
    "direction_stats",
    "instance_stats",
    "parallelism_profile",
]


@dataclass
class DirectionStats:
    """Shape of one direction's DAG."""

    direction: int
    depth: int  # number of levels
    max_width: int  # largest level
    mean_width: float
    edges: int


@dataclass
class InstanceStats:
    """Aggregate sweep-difficulty statistics of an instance."""

    name: str
    n_cells: int
    k: int
    n_tasks: int
    total_edges: int
    depth: int  # max over directions
    max_parallelism: int  # widest union-DAG level
    mean_parallelism: float
    #: nk / depth: an upper bound on useful processors if directions ran
    #: strictly one after another.
    serial_direction_limit: float
    #: n_tasks / union depth: the instance's intrinsic parallel slack.
    intrinsic_parallelism: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def direction_stats(inst: SweepInstance, direction: int) -> DirectionStats:
    """Level-structure statistics of one direction DAG."""
    g = inst.dags[direction]
    depth = g.num_levels()
    if depth and g.n:
        widths = np.bincount(g.level_of(), minlength=depth)
        max_w = int(widths.max())
        mean_w = float(widths.mean())
    else:
        max_w, mean_w = 0, 0.0
    return DirectionStats(
        direction=direction,
        depth=depth,
        max_width=max_w,
        mean_width=mean_w,
        edges=g.num_edges,
    )


def parallelism_profile(inst: SweepInstance) -> np.ndarray:
    """Width of every union-DAG level: tasks that *could* run together.

    This is the zero-delay parallelism envelope; the random delays
    flatten it by staggering directions.
    """
    union = inst.union_dag()
    depth = union.num_levels()
    if depth == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(union.level_of(), minlength=depth)


def instance_stats(inst: SweepInstance) -> InstanceStats:
    """Aggregate statistics over all directions."""
    profile = parallelism_profile(inst)
    union_depth = profile.size
    depth = inst.depth()
    return InstanceStats(
        name=inst.name,
        n_cells=inst.n_cells,
        k=inst.k,
        n_tasks=inst.n_tasks,
        total_edges=sum(g.num_edges for g in inst.dags),
        depth=depth,
        max_parallelism=int(profile.max()) if profile.size else 0,
        mean_parallelism=float(profile.mean()) if profile.size else 0.0,
        serial_direction_limit=inst.n_tasks / depth if depth else 0.0,
        intrinsic_parallelism=inst.n_tasks / union_depth if union_depth else 0.0,
    )
