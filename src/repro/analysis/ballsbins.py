"""Probability toolkit from the paper: Lemma 1, Corollary 2, Lemma 5.

These are the quantitative engines behind the approximation proofs:

* :func:`chernoff_G` — the Chernoff–Hoeffding tail ``G(mu, delta)``
  (Lemma 1(a));
* :func:`bound_F` — the inverse-tail function ``F(mu, p)`` with
  ``Pr[X > F(mu, p)] < p`` (Lemma 1(b));
* :func:`bound_H` — the balls-in-bins max-load majorant ``H(mu, p)`` of
  Eq. (3), concave in ``mu`` (Corollary 2(a));
* :func:`expected_max_load_bound` — Corollary 2(b): throwing ``t`` balls
  into ``m`` bins, ``E[max load] <= H(t/m, 1/m^2) + t/m``;
* :func:`max_load` — the simulation the statistical tests compare
  against;
* :func:`phi` — ``x^a e^-x`` (Lemma 5, convex on [0, 1] for a >= 3).

Constants: the paper only asserts *existence* of the constants ``a`` and
``C``; the defaults here (``a = 2``, ``C = 2``) are verified numerically
by the test-suite over wide parameter ranges.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ReproError
from repro.util.rng import as_rng

__all__ = [
    "chernoff_G",
    "bound_F",
    "bound_H",
    "expected_max_load_bound",
    "max_load",
    "mean_max_load",
    "phi",
]


def chernoff_G(mu: float, delta: float) -> float:
    """``G(mu, delta) = (e^delta / (1+delta)^(1+delta))^mu`` (Lemma 1(a)).

    Computed in log space to avoid overflow for large ``delta``.
    """
    if mu < 0 or delta < 0:
        raise ReproError(f"mu and delta must be nonnegative, got {mu}, {delta}")
    if delta == 0:
        return 1.0
    log_g = mu * (delta - (1.0 + delta) * np.log1p(delta))
    return float(np.exp(log_g))


def bound_F(mu: float, p: float, a: float = 2.0) -> float:
    """``F(mu, p)`` of Lemma 1(b): a tail threshold with mass below ``p``.

    ``F(mu, p) = a ln(1/p) / ln(ln(1/p)/mu)`` in the sparse regime
    (``mu <= ln(1/p)/e``) and ``mu + a sqrt(ln(1/p) * mu)`` otherwise.

    Note: the paper's display types the dense branch as
    ``mu + a sqrt(ln(p^-1)/mu)``; the standard Chernoff form (and the one
    that actually satisfies ``G(mu, F/mu - 1) < p``) multiplies rather
    than divides, which is what we implement.
    """
    _check_mu_p(mu, p)
    lp = float(np.log(1.0 / p))
    if mu <= lp / np.e:
        return a * lp / np.log(lp / mu)
    return mu + a * np.sqrt(lp * mu)


def bound_H(mu: float, p: float, C: float = 2.0) -> float:
    """``H(mu, p)`` of Eq. (3): the majorant used by Theorem 3.

    Reproduction note: the paper asserts (Corollary 2(a)) that ``H`` is
    concave in ``mu`` for fixed ``p``.  As literally defined this is not
    quite true: writing ``L = ln(1/p)``, the sparse branch
    ``C L / ln(L/mu)`` has second derivative proportional to
    ``2 - ln(L/mu)``, i.e. it is *convex* on ``(L/e^2, L/e]`` and concave
    only below ``L/e^2``.  ``H`` is continuous with matching first
    derivative at ``mu = L/e`` (as the paper checks) and concave outside
    that narrow band, which is all Theorem 3's Jensen step needs up to a
    constant factor.  We implement the paper's literal definition; the
    test-suite pins both the concave region and the boundary smoothness.
    """
    _check_mu_p(mu, p)
    lp = float(np.log(1.0 / p))
    if mu <= lp / np.e:
        return C * lp / np.log(lp / mu)
    return C * np.e * mu


def expected_max_load_bound(t: int, m: int, C: float = 2.0) -> float:
    """Corollary 2(b): bound on E[max bin load], t balls into m bins."""
    if m <= 0:
        raise ReproError(f"need at least one bin, got {m}")
    if t < 0:
        raise ReproError(f"ball count must be nonnegative, got {t}")
    if t == 0:
        return 0.0
    return bound_H(t / m, 1.0 / m**2, C=C) + t / m


def max_load(t: int, m: int, seed=None) -> int:
    """One balls-in-bins experiment: max bin occupancy."""
    if m <= 0:
        raise ReproError(f"need at least one bin, got {m}")
    if t == 0:
        return 0
    rng = as_rng(seed)
    bins = rng.integers(0, m, size=t)
    return int(np.bincount(bins, minlength=m).max())


def mean_max_load(t: int, m: int, trials: int = 100, seed=None) -> float:
    """Monte-Carlo estimate of E[max load] over ``trials`` experiments."""
    rng = as_rng(seed)
    if trials <= 0:
        raise ReproError(f"trials must be positive, got {trials}")
    return float(np.mean([max_load(t, m, rng) for _ in range(trials)]))


def phi(x, a: float = 3.0):
    """``phi_a(x) = x^a e^-x`` (Lemma 5: convex on [0, 1] for a >= 3)."""
    x = np.asarray(x, dtype=np.float64)
    return x**a * np.exp(-x)


def _check_mu_p(mu: float, p: float) -> None:
    if mu <= 0:
        raise ReproError(f"mu must be positive, got {mu}")
    if not 0 < p < 1:
        raise ReproError(f"p must lie in (0, 1), got {p}")
