"""Statistical comparison of randomized scheduling algorithms.

Randomized schedulers need more than single-seed comparisons: this
module runs algorithms over seed batches and reports means with
bootstrap confidence intervals, plus paired win/loss records (paired on
seed, which removes the shared mesh-randomness variance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import SweepInstance
from repro.core.lower_bounds import average_load_lb
from repro.heuristics.registry import get_algorithm
from repro.util.errors import ReproError
from repro.util.rng import as_rng, spawn_rngs

__all__ = ["AlgorithmSample", "sample_algorithm", "bootstrap_ci", "compare_pair"]


@dataclass
class AlgorithmSample:
    """Makespans of one algorithm across seeds, with summary stats."""

    algorithm: str
    m: int
    makespans: np.ndarray
    lower_bound: int

    @property
    def ratios(self) -> np.ndarray:
        return self.makespans / max(self.lower_bound, 1)

    @property
    def mean_ratio(self) -> float:
        return float(self.ratios.mean())


def sample_algorithm(
    inst: SweepInstance,
    algorithm: str,
    m: int,
    n_seeds: int = 10,
    seed=0,
) -> AlgorithmSample:
    """Run ``algorithm`` across ``n_seeds`` independent seeds."""
    if n_seeds <= 0:
        raise ReproError(f"n_seeds must be positive, got {n_seeds}")
    algo = get_algorithm(algorithm)
    makespans = np.array(
        [algo(inst, m, seed=rng).makespan for rng in spawn_rngs(seed, n_seeds)]
    )
    return AlgorithmSample(
        algorithm=algorithm,
        m=m,
        makespans=makespans,
        lower_bound=average_load_lb(inst, m),
    )


def bootstrap_ci(
    values: np.ndarray,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed=0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``values``."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ReproError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ReproError(f"confidence must lie in (0, 1), got {confidence}")
    rng = as_rng(seed)
    idx = rng.integers(0, values.size, size=(n_boot, values.size))
    means = values[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def compare_pair(
    inst: SweepInstance,
    algorithm_a: str,
    algorithm_b: str,
    m: int,
    n_seeds: int = 10,
    seed=0,
) -> dict:
    """Seed-paired comparison of two algorithms.

    Both algorithms consume the *same* seed per trial, so differences
    come from the algorithms, not the random draws.  Returns means, a
    bootstrap CI on the paired makespan difference (a - b), and the
    win/tie/loss record for ``algorithm_a``.
    """
    algo_a = get_algorithm(algorithm_a)
    algo_b = get_algorithm(algorithm_b)
    a_spans, b_spans = [], []
    for rng in spawn_rngs(seed, n_seeds):
        # Reuse the identical generator state for both algorithms.
        state = rng.bit_generator.state
        a_spans.append(algo_a(inst, m, seed=rng).makespan)
        rng.bit_generator.state = state
        b_spans.append(algo_b(inst, m, seed=rng).makespan)
    a = np.array(a_spans, dtype=np.float64)
    b = np.array(b_spans, dtype=np.float64)
    diff = a - b
    lo, hi = bootstrap_ci(diff, seed=seed)
    return {
        "algorithm_a": algorithm_a,
        "algorithm_b": algorithm_b,
        "mean_a": float(a.mean()),
        "mean_b": float(b.mean()),
        "mean_diff": float(diff.mean()),
        "diff_ci_low": lo,
        "diff_ci_high": hi,
        "a_wins": int((diff < 0).sum()),
        "ties": int((diff == 0).sum()),
        "b_wins": int((diff > 0).sum()),
        "significant": not (lo <= 0.0 <= hi),
    }
