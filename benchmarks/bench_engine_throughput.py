"""E21 — scheduler engine throughput (the "almost linear time" claim).

Theorem 1 notes the algorithms run in time almost linear in the schedule
length; Theorem 2 gives O((mk + nk) log nk) for the list scheduler.
These are the only benchmarks here that measure *our implementation's*
speed rather than schedule quality: tasks-per-second of each engine and
an empirical scaling check (doubling the instance should roughly double
the runtime, not quadruple it).
"""

from benchmarks.conftest import run_once
from repro.core import (
    random_delay_priority_schedule,
    random_delay_schedule,
)
from repro.core.list_scheduler import list_schedule_unassigned
from repro.experiments import format_table
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_instance
from repro.util.timing import Timer

SIZES = (1000, 2000, 4000)
M = 32


def _measure():
    rows = []
    for cells in SIZES:
        cfg = ExperimentConfig(mesh="tetonly", target_cells=cells, k=8)
        inst = get_instance(cfg)
        row = {"n_tasks": inst.n_tasks}
        for label, fn in (
            ("alg1_vectorised", lambda: random_delay_schedule(inst, M, seed=0)),
            ("alg2_list", lambda: random_delay_priority_schedule(inst, M, seed=0)),
            ("graham_unassigned", lambda: list_schedule_unassigned(inst, M)),
        ):
            # Best of three: wall-clock noise (GC, cache state left by
            # other benches) otherwise dominates single measurements.
            best = float("inf")
            for _ in range(3):
                with Timer() as t:
                    fn()
                best = min(best, t.elapsed)
            row[label + "_tasks_per_s"] = int(inst.n_tasks / best)
        rows.append(row)
    return rows


def test_engine_throughput(benchmark, show):
    rows = run_once(benchmark, _measure)
    show(
        format_table(
            rows,
            [
                "n_tasks",
                "alg1_vectorised_tasks_per_s",
                "alg2_list_tasks_per_s",
                "graham_unassigned_tasks_per_s",
            ],
            title=f"E21 — engine throughput, tasks/second (tetonly-like, k=8, m={M})",
        )
    )
    # Near-linear scaling: throughput must not collapse as N quadruples.
    # (Allow 4x degradation for cache effects and log factors — a
    # quadratic engine would degrade ~16x over this range.)
    for key in (
        "alg1_vectorised_tasks_per_s",
        "alg2_list_tasks_per_s",
        "graham_unassigned_tasks_per_s",
    ):
        first, last = rows[0][key], rows[-1][key]
        assert last > first / 4.0, f"{key} degraded superlinearly"
    # The vectorised layered engine is the fastest of the three.
    for row in rows:
        assert (
            row["alg1_vectorised_tasks_per_s"]
            >= row["alg2_list_tasks_per_s"]
        )
