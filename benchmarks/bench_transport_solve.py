"""E15 — end-to-end transport: sweeps in schedule order drive a real solve.

Extension beyond the paper (which simulates schedules only): run the
one-group S_n source iteration the schedules exist to serve, verify the
infinite-medium analytic answer through the full pipeline, and measure
solver throughput.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import random_delay_priority_schedule
from repro.experiments import format_table
from repro.mesh import well_logging_like
from repro.sweeps import build_instance
from repro.transport import Quadrature, TransportProblem, solve_with_schedule

CELLS = 800


def _solve_suite():
    mesh = well_logging_like(target_cells=CELLS, seed=0)
    quad = Quadrature.sn(2)
    inst = build_instance(mesh, quad.directions)
    sched = random_delay_priority_schedule(inst, 16, seed=0)
    rows = []
    for label, ss, boundary, exact in (
        ("absorber, vacuum", 0.0, "vacuum", None),
        ("scattering c=0.5, vacuum", 0.5, "vacuum", None),
        ("scattering c=0.5, white", 0.5, "white", 2.0),
        ("scattering c=0.8, white", 0.8, "white", 5.0),
    ):
        p = TransportProblem(
            mesh, quad, sigma_t=1.0, sigma_s=ss, source=1.0, boundary=boundary
        )
        res = solve_with_schedule(p, sched, tol=1e-9)
        rows.append(
            {
                "case": label,
                "iterations": res.iterations,
                "converged": res.converged,
                "phi_mean": float(res.phi.mean()),
                "exact": exact if exact is not None else "",
                "max_err": float(np.abs(res.phi - exact).max())
                if exact is not None
                else "",
            }
        )
    return rows


def test_transport_solve(benchmark, show):
    rows = run_once(benchmark, _solve_suite)
    show(
        format_table(
            rows,
            ["case", "iterations", "converged", "phi_mean", "exact", "max_err"],
            title=f"E15 — S_n transport solves in schedule order ({CELLS} cells, k=8)",
        )
    )
    for row in rows:
        assert row["converged"]
    # Infinite-medium cases hit the analytic answer.
    for row in rows:
        if row["exact"] != "":
            assert row["max_err"] < 1e-5
    # Scattering ratio drives iteration counts up.
    iters = [r["iterations"] for r in rows]
    assert iters[0] < iters[1] <= iters[2] < iters[3]
