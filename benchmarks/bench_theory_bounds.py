"""E8 — theory validation: Lemma 2, Lemma 3, Corollary 2 empirics.

Measures the quantities the proofs bound and prints them next to the
bounds (the empirical counterpart of Section 4's analysis).
"""

import numpy as np

from benchmarks.conftest import BENCH_CELLS, run_once
from repro.analysis import (
    expected_max_load_bound,
    lemma2_max_copies_per_layer,
    lemma3_max_tasks_per_proc_layer,
    mean_max_load,
    theorem3_layer_times,
)
from repro.core import random_cell_assignment
from repro.core.random_delay import draw_delays
from repro.experiments import format_table
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_instance
from repro.util.rng import spawn_rngs


def _lemma_rows():
    cfg = ExperimentConfig(mesh="tetonly", target_cells=BENCH_CELLS, k=24)
    inst = get_instance(cfg)
    n, k = inst.n_cells, inst.k
    rows = []
    for m in (8, 32, 128):
        copies, per_proc = [], []
        for rng in spawn_rngs(0, 8):
            delays = draw_delays(k, rng)
            assignment = random_cell_assignment(n, m, rng)
            copies.append(lemma2_max_copies_per_layer(inst, delays))
            per_proc.append(
                lemma3_max_tasks_per_proc_layer(inst, delays, assignment, m)
            )
        rows.append(
            {
                "m": m,
                "lemma2_max_copies": float(np.mean(copies)),
                "lemma2_bound_logn": float(np.log(n)),
                "lemma3_max_per_proc": float(np.mean(per_proc)),
                "lemma3_bound": float(max(n / m, 1) * np.log(n) ** 2),
            }
        )
    return rows


def test_lemma_bounds(benchmark, show):
    rows = run_once(benchmark, _lemma_rows)
    show(
        format_table(
            rows,
            [
                "m",
                "lemma2_max_copies",
                "lemma2_bound_logn",
                "lemma3_max_per_proc",
                "lemma3_bound",
            ],
            title="E8 — Lemma 2/3 empirics vs bounds (tetonly-like, k=24)",
        )
    )
    for row in rows:
        # alpha = 3 comfortably covers the observed constant.
        assert row["lemma2_max_copies"] <= 3 * row["lemma2_bound_logn"]
        assert row["lemma3_max_per_proc"] <= row["lemma3_bound"]


def _ballsbins_rows():
    rows = []
    for t, m in ((64, 8), (256, 16), (1024, 32), (4096, 64)):
        rows.append(
            {
                "balls_t": t,
                "bins_m": m,
                "E_max_load": mean_max_load(t, m, trials=300, seed=0),
                "corollary2_bound": expected_max_load_bound(t, m),
            }
        )
    return rows


def test_corollary2_balls_in_bins(benchmark, show):
    rows = run_once(benchmark, _ballsbins_rows)
    show(
        format_table(
            rows,
            ["balls_t", "bins_m", "E_max_load", "corollary2_bound"],
            title="E8 — Corollary 2(b): expected max load vs bound",
        )
    )
    for row in rows:
        assert row["E_max_load"] <= row["corollary2_bound"]


def _theorem3_rows():
    cfg = ExperimentConfig(mesh="tetonly", target_cells=BENCH_CELLS, k=8)
    inst = get_instance(cfg)
    rows = []
    for m in (8, 32, 128):
        samples = [
            theorem3_layer_times(inst, m, seed=rng) for rng in spawn_rngs(3, 4)
        ]
        rows.append(
            {
                "m": m,
                "mean_max_excess": float(
                    np.mean([s["max_excess"] for s in samples])
                ),
                "rho_logm_llm": samples[0]["rho"],
            }
        )
    return rows


def test_theorem3_layer_excess(benchmark, show):
    """Theorem 3: per-layer time exceeds |layer|/m by only
    O(log m log log log m); the observed excess/rho ratio must stay a
    small constant as m scales 16x."""
    rows = run_once(benchmark, _theorem3_rows)
    for row in rows:
        row["excess_over_rho"] = row["mean_max_excess"] / row["rho_logm_llm"]
    show(
        format_table(
            rows,
            ["m", "mean_max_excess", "rho_logm_llm", "excess_over_rho"],
            title="E8 — Theorem 3: worst layer excess vs rho = log m * logloglog m",
        )
    )
    for row in rows:
        assert row["excess_over_rho"] <= 6.0
