"""E1 — Fig. 2(a): Random Delay makespan vs m, cell vs block assignment.

Paper claim: partitioning into blocks (instead of choosing a processor
per cell) increases the makespan only modestly.
"""

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.experiments import paper, pick


def test_fig2a_makespan(benchmark, show):
    rows, text = run_once(
        benchmark,
        paper.fig2a,
        target_cells=BENCH_CELLS,
        m_values=(2, 4, 8, 16, 32),
        block_sizes=(1, 16, 64),
        seeds=BENCH_SEEDS,
    )
    show(text)
    # Shape check: blocking never *reduces* makespan below per-cell by a
    # large margin, and stays within a small factor of it at moderate m
    # (blocks >= 2x processors here).
    for m in (2, 4, 8, 16):
        cell = pick(rows, m=m, block_size=1)[0]["makespan"]
        block = pick(rows, m=m, block_size=16)[0]["makespan"]
        assert block <= 3.0 * cell
