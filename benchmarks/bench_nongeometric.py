"""E19 — non-geometric instances: robustness beyond meshes.

The paper: "All the algorithms we consider assume no relation between
the DAGs in different directions, and thus are applicable even to
non-geometric instances" — and notes the S_n symmetry that heuristics
exploit "might not exist" elsewhere.  This bench runs the algorithm set
over the structured instance families and reports the ratio to the
combined lower bound, probing exactly that claim.
"""

import numpy as np

from benchmarks.conftest import BENCH_SEEDS, run_once
from repro.core import combined_lower_bound
from repro.experiments import format_table
from repro.heuristics import ALGORITHMS
from repro.instances import INSTANCE_FAMILIES, make_instance

N = 128
K = 8
M = 8
ALGOS = ("random_delay", "random_delay_priority", "level", "descendant", "dfds")


def _sweep():
    rows = []
    for family in sorted(INSTANCE_FAMILIES):
        inst = make_instance(family, n=N, k=K, seed=0)
        lb = combined_lower_bound(inst, M)
        row = {"family": family, "lb": lb}
        for name in ALGOS:
            ratios = [
                ALGORITHMS[name](inst, M, seed=s).makespan / lb
                for s in BENCH_SEEDS
            ]
            row[name] = float(np.mean(ratios))
        rows.append(row)
    return rows


def test_nongeometric_families(benchmark, show):
    rows = run_once(benchmark, _sweep)
    show(
        format_table(
            rows,
            ["family", "lb"] + list(ALGOS),
            title=f"E19 — ratio to combined LB on non-geometric families (n={N}, k={K}, m={M})",
        )
    )
    for row in rows:
        # The provable algorithm keeps a sane ratio on *every* family —
        # no geometric assumptions needed (log^2 n ~ 23 here; observed
        # should stay far below it).
        assert row["random_delay_priority"] <= 6.0
        # Compaction never loses to the plain layered algorithm.
        assert row["random_delay_priority"] <= row["random_delay"] + 1e-9
