"""E18 — robustness to non-uniform task costs (beyond the paper).

The paper assumes uniform processing time p = 1.  Real sweep kernels
vary per cell (element shape, material data); this ablation re-runs the
priority algorithm under lognormal cost heterogeneity and checks the
ratio to the weighted lower bound (total cost / m) degrades gracefully.
"""

import numpy as np

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.core import latency_list_schedule
from repro.core.random_delay import delayed_task_layers, draw_delays
from repro.experiments import format_table
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_instance
from repro.util.rng import spawn_rngs

M = 16
SIGMAS = (0.0, 0.3, 0.6, 1.0)  # lognormal shape: 0 = uniform costs


def _sweep():
    cfg = ExperimentConfig(mesh="tetonly", target_cells=BENCH_CELLS, k=8)
    inst = get_instance(cfg)
    rows = []
    for sigma in SIGMAS:
        ratios = []
        for rng in spawn_rngs(0, len(BENCH_SEEDS)):
            if sigma == 0.0:
                cell_cost = np.ones(inst.n_cells, dtype=np.int64)
            else:
                # Integer-quantised lognormal costs per cell (every copy
                # of a cell costs the same, as in a real sweep kernel).
                raw = rng.lognormal(mean=0.0, sigma=sigma, size=inst.n_cells)
                cell_cost = np.maximum(1, np.round(3 * raw)).astype(np.int64)
            task_cost = np.tile(cell_cost, inst.k)
            gamma = delayed_task_layers(inst, draw_delays(inst.k, rng))
            assignment = rng.integers(0, M, size=inst.n_cells)
            s = latency_list_schedule(
                inst, M, assignment, priority=gamma, task_cost=task_cost
            )
            s.validate()
            lb = int(task_cost.sum()) / M
            ratios.append(s.makespan / lb)
        rows.append(
            {
                "cost_sigma": sigma,
                "ratio_mean": float(np.mean(ratios)),
                "ratio_max": float(np.max(ratios)),
            }
        )
    return rows


def test_heterogeneous_costs(benchmark, show):
    rows = run_once(benchmark, _sweep)
    show(
        format_table(
            rows,
            ["cost_sigma", "ratio_mean", "ratio_max"],
            title=f"E18 — ratio to weighted LB under lognormal costs (k=8, m={M})",
        )
    )
    # Uniform costs set the baseline; heterogeneity degrades gracefully
    # (stays within the paper's 3x envelope even at sigma = 1).
    for row in rows:
        assert row["ratio_max"] <= 3.0
