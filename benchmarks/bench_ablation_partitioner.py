"""E10 — ablation: multilevel partitioner vs BFS / geometric / random.

The paper relies on METIS for its block partitioning; this ablation
shows the multilevel stand-in is the right substitute: it dominates the
cheaper baselines on edge cut and hence on C1.
"""

from benchmarks.conftest import BENCH_CELLS, run_once
from repro.comm import interprocessor_edges
from repro.core import block_assignment
from repro.experiments import format_table
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_instance
from repro.mesh.generators import make_mesh
from repro.partition import (
    PartGraph,
    bfs_blocks,
    edge_cut,
    balance,
    geometric_blocks,
    partition_mesh_blocks,
    random_blocks,
    rcb_blocks,
    spectral_partition,
)

BLOCK_SIZE = 32
M = 16


def _compare():
    rows = []
    for mesh_name in ("tetonly", "well_logging", "long"):
        mesh = make_mesh(mesh_name, target_cells=BENCH_CELLS, seed=0)
        cfg = ExperimentConfig(mesh=mesh_name, target_cells=BENCH_CELLS, k=8)
        inst = get_instance(cfg)
        n_blocks = max(1, mesh.n_cells // BLOCK_SIZE)
        partitioners = {
            "multilevel": partition_mesh_blocks(
                mesh.n_cells, mesh.adjacency, BLOCK_SIZE, seed=0
            ),
            "spectral": spectral_partition(
                PartGraph.from_edges(mesh.n_cells, mesh.adjacency), n_blocks
            ),
            "rcb": rcb_blocks(mesh.centroids, BLOCK_SIZE),
            "bfs": bfs_blocks(mesh.n_cells, mesh.adjacency, BLOCK_SIZE, seed=0),
            "geometric": geometric_blocks(mesh.centroids, BLOCK_SIZE),
            "random": random_blocks(mesh.n_cells, BLOCK_SIZE, seed=0),
        }
        for name, blocks in partitioners.items():
            assignment = block_assignment(blocks, M, seed=0)
            rows.append(
                {
                    "mesh": mesh_name,
                    "partitioner": name,
                    "cut": edge_cut(blocks, mesh.adjacency),
                    "balance": balance(blocks),
                    "c1": interprocessor_edges(inst, assignment),
                }
            )
    return rows


def test_partitioner_ablation(benchmark, show):
    rows = run_once(benchmark, _compare)
    show(
        format_table(
            rows,
            ["mesh", "partitioner", "cut", "balance", "c1"],
            title=f"E10 — partitioner quality (block {BLOCK_SIZE}, m={M}, k=8)",
        )
    )
    for mesh_name in ("tetonly", "well_logging", "long"):
        sub = {r["partitioner"]: r for r in rows if r["mesh"] == mesh_name}
        # Multilevel strictly wins the cut against the cheap baselines,
        # and stays competitive (within 25%) of spectral.
        for other in ("bfs", "geometric", "random", "rcb"):
            assert sub["multilevel"]["cut"] < sub[other]["cut"]
        assert sub["multilevel"]["cut"] < 1.25 * sub["spectral"]["cut"]
