"""E3 — Fig. 2(c): Random Delays vs Random Delays with Priorities.

Paper claim: the priority (compacted) variant beats the plain layered
algorithm, by up to ~4x at high processor counts; makespan stays within
3 nk/m throughout (linear speedup regime).
"""

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.experiments import paper, pick


def test_fig2c_priorities(benchmark, show):
    m_values = (8, 16, 32, 64, 128)
    rows, text = run_once(
        benchmark,
        paper.fig2c,
        target_cells=BENCH_CELLS,
        m_values=m_values,
        k_values=(8, 24),
        seeds=BENCH_SEEDS,
    )
    show(text)
    for k in (8, 24):
        for m in m_values:
            plain = pick(rows, m=m, k=k, algorithm="random_delay")[0]
            prio = pick(rows, m=m, k=k, algorithm="random_delay_priority")[0]
            assert prio["ratio"] <= plain["ratio"] + 1e-9
        # Gap widens with m (paper: up to 4x at 512 procs).
        gap_small = (
            pick(rows, m=m_values[0], k=k, algorithm="random_delay")[0]["ratio"]
            / pick(rows, m=m_values[0], k=k, algorithm="random_delay_priority")[0]["ratio"]
        )
        gap_large = (
            pick(rows, m=m_values[-1], k=k, algorithm="random_delay")[0]["ratio"]
            / pick(rows, m=m_values[-1], k=k, algorithm="random_delay_priority")[0]["ratio"]
        )
        assert gap_large > gap_small
