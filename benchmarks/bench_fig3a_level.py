"""E4 — Fig. 3(a): level priorities without delays vs random delays.

Paper claim: the two perform equally at small m; the random delays
improve the makespan at higher processor counts.
"""

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.experiments import paper, pick


def test_fig3a_level(benchmark, show):
    m_values = (4, 8, 16, 32, 64)
    rows, text = run_once(
        benchmark,
        paper.fig3a,
        target_cells=BENCH_CELLS,
        m_values=m_values,
        k_values=(8, 24),
        seeds=BENCH_SEEDS,
    )
    show(text)
    # Equal at small m: within 10% of each other.
    for k in (8, 24):
        lvl = pick(rows, m=4, k=k, algorithm="level")[0]["ratio"]
        rnd = pick(rows, m=4, k=k, algorithm="random_delay_priority")[0]["ratio"]
        assert abs(lvl - rnd) / rnd < 0.10
    # Everything stays within the paper's 3x envelope at moderate m.
    for row in rows:
        if row["m"] <= 16:
            assert row["ratio"] <= 3.0
