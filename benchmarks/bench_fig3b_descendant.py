"""E5 — Fig. 3(b): descendant priorities ± delays vs random delays.

Paper claims: equal at small m; at high m and few directions the
descendant heuristic edges out random delays; adding delays to the
descendant heuristic helps at very high m / few directions.
"""

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.experiments import paper, pick


def test_fig3b_descendant(benchmark, show):
    m_values = (4, 8, 16, 32, 64)
    rows, text = run_once(
        benchmark,
        paper.fig3b,
        target_cells=BENCH_CELLS,
        m_values=m_values,
        k_values=(8, 24),
        seeds=BENCH_SEEDS,
    )
    show(text)
    # Equal performance at small m for every variant.
    base = pick(rows, m=4, k=24, algorithm="random_delay_priority")[0]["ratio"]
    for algo in ("descendant", "descendant_delays"):
        other = pick(rows, m=4, k=24, algorithm=algo)[0]["ratio"]
        assert abs(other - base) / base < 0.15
    # Descendant priorities competitive with random delays at high m.
    hi = m_values[-1]
    desc = pick(rows, m=hi, k=8, algorithm="descendant")[0]["ratio"]
    rnd = pick(rows, m=hi, k=8, algorithm="random_delay_priority")[0]["ratio"]
    assert desc <= 1.25 * rnd


def test_fig3b_percell_separation(benchmark, show):
    """At reduced mesh scale the random block-to-processor assignment's
    load imbalance binds all work-conserving heuristics to the same
    makespan at high m (see EXPERIMENTS.md); the paper's separation —
    descendant priorities edging out random delays at high m, few
    directions — reappears under per-cell assignment."""
    rows, text = run_once(
        benchmark,
        paper.fig3b,
        target_cells=BENCH_CELLS,
        m_values=(16, 64),
        k_values=(8,),
        seeds=BENCH_SEEDS,
        block_size=1,
    )
    show(text)
    desc = pick(rows, m=64, k=8, algorithm="descendant")[0]["ratio"]
    rnd = pick(rows, m=64, k=8, algorithm="random_delay_priority")[0]["ratio"]
    assert desc <= rnd + 1e-9
