"""E23 — cost of direction batching (angle-set aggregation, extension).

Memory-constrained transport codes sweep direction batches sequentially
instead of pipelining all k at once.  Measures the makespan penalty as
the batch count grows — the concurrency the paper's joint scheduling
buys over batch-at-a-time execution.
"""

import numpy as np

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.analysis import approx_ratio
from repro.experiments import format_table
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_instance
from repro.sweeps import batched_schedule

M = 32
BATCHES = (1, 2, 4, 8, 24)


def _sweep():
    cfg = ExperimentConfig(mesh="tetonly", target_cells=BENCH_CELLS, k=24)
    inst = get_instance(cfg)
    rows = []
    for nb in BATCHES:
        ratios = [
            approx_ratio(batched_schedule(inst, M, n_batches=nb, seed=s))
            for s in BENCH_SEEDS
        ]
        rows.append(
            {
                "n_batches": nb,
                "dirs_per_batch": inst.k // nb,
                "ratio_mean": float(np.mean(ratios)),
            }
        )
    return rows


def test_batching_cost(benchmark, show):
    rows = run_once(benchmark, _sweep)
    show(
        format_table(
            rows,
            ["n_batches", "dirs_per_batch", "ratio_mean"],
            title=f"E23 — makespan cost of direction batching (k=24, m={M})",
        )
    )
    ratios = [r["ratio_mean"] for r in rows]
    # Weak monotonicity: batching never helps (small noise allowance).
    for a, b in zip(ratios, ratios[1:]):
        assert b >= a * 0.97
    # Fully serial batches (one direction at a time) cost real money.
    assert ratios[-1] > 1.3 * ratios[0]