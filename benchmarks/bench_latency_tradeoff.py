"""E16 — communication/processing trade-off under explicit latency.

Paper Section 5.1 promises "schedules which trade-off communication and
processing costs" via block partitioning; this bench realises it with
the event-driven engine: makespan vs per-message latency ``c`` for the
per-cell random assignment (best balance, worst cut) against block
assignments (worse balance, far fewer cut edges).  Expected shape: the
per-cell assignment wins at c=0 and loses past a crossover latency.
"""

import numpy as np

from benchmarks.conftest import BENCH_CELLS, run_once
from repro.core import block_assignment, latency_list_schedule
from repro.core.random_delay import delayed_task_layers, draw_delays
from repro.experiments import format_table
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_blocks, get_instance
from repro.util.rng import spawn_rngs

M = 16
LATENCIES = (0, 2, 8, 32)
BLOCK_SIZE = 32


def _sweep():
    cfg = ExperimentConfig(mesh="tetonly", target_cells=BENCH_CELLS, k=8)
    inst = get_instance(cfg)
    rng_assign, rng_delay = spawn_rngs(0, 2)
    per_cell = rng_assign.integers(0, M, size=inst.n_cells)
    blocks = get_blocks(cfg, BLOCK_SIZE)
    blocked = block_assignment(blocks, M, seed=rng_assign, balanced=True)
    gamma = delayed_task_layers(inst, draw_delays(inst.k, rng_delay))

    rows = []
    for c in LATENCIES:
        row = {"latency": c}
        for label, assignment in (("per_cell", per_cell), ("blocks", blocked)):
            s = latency_list_schedule(
                inst, M, assignment, priority=gamma, comm_latency=c
            )
            row[label] = s.makespan
        row["blocks_win"] = row["blocks"] < row["per_cell"]
        rows.append(row)
    return rows


def test_latency_tradeoff(benchmark, show):
    rows = run_once(benchmark, _sweep)
    show(
        format_table(
            rows,
            ["latency", "per_cell", "blocks", "blocks_win"],
            title=(
                f"E16 — makespan vs message latency (tetonly-like, k=8, m={M}, "
                f"block {BLOCK_SIZE})"
            ),
        )
    )
    # c = 0: balance wins (or ties within 10%).
    assert rows[0]["per_cell"] <= rows[0]["blocks"] * 1.1
    # Large c: the low-cut assignment must win.
    assert rows[-1]["blocks_win"]
    # Both curves are monotone in latency.
    for key in ("per_cell", "blocks"):
        vals = [r[key] for r in rows]
        assert vals == sorted(vals)
