"""E9 — ablation: block size vs (makespan, C1, C2).

Sweeps the block size from per-cell (1) to large blocks and prints the
trade-off curve the paper's Section 5.1 describes: C1 falls with block
size, makespan rises, C2 roughly flat.
"""

import numpy as np

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.analysis import summarize_schedule
from repro.core import block_assignment, random_delay_priority_schedule
from repro.experiments import format_table
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_blocks, get_instance
from repro.util.rng import spawn_rngs

M = 16
BLOCK_SIZES = (1, 4, 16, 64, 128)


def _sweep():
    cfg = ExperimentConfig(mesh="tetonly", target_cells=BENCH_CELLS, k=24)
    inst = get_instance(cfg)
    rows = []
    for bs in BLOCK_SIZES:
        summaries = []
        for seed_rng in spawn_rngs(0, len(BENCH_SEEDS)):
            if bs == 1:
                sched = random_delay_priority_schedule(inst, M, seed=seed_rng)
            else:
                blocks = get_blocks(cfg, bs)
                assignment = block_assignment(blocks, M, seed=seed_rng)
                sched = random_delay_priority_schedule(
                    inst, M, seed=seed_rng, assignment=assignment
                )
            summaries.append(summarize_schedule(sched))
        rows.append(
            {
                "block_size": bs,
                "makespan": float(np.mean([s.makespan for s in summaries])),
                "ratio": float(np.mean([s.ratio for s in summaries])),
                "c1": float(np.mean([s.c1 for s in summaries])),
                "c1_fraction": float(np.mean([s.c1_fraction for s in summaries])),
                "c2": float(np.mean([s.c2 for s in summaries])),
            }
        )
    return rows


def test_blocksize_ablation(benchmark, show):
    rows = run_once(benchmark, _sweep)
    show(
        format_table(
            rows,
            ["block_size", "makespan", "ratio", "c1", "c1_fraction", "c2"],
            title=f"E9 — block-size trade-off (tetonly-like, k=24, m={M})",
        )
    )
    # C1 decreases monotonically with block size.
    c1s = [r["c1"] for r in rows]
    assert all(b < a for a, b in zip(c1s, c1s[1:]))
    # Makespan does not collapse: per-cell is best or near-best.
    assert rows[0]["makespan"] <= min(r["makespan"] for r in rows) * 1.05
