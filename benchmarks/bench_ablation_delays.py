"""E13 — ablation: the random-delay distribution (design choice).

The paper draws ``X_i ~ Uniform{0..k-1}``; the proofs only need the
delays to spread direction fronts.  This ablation compares the paper's
choice against no delays, a wider window {0..2k}, a depth-scaled window
{0..D}, and deterministic evenly spaced delays — quantifying how much
the *distribution* matters vs the mere existence of staggering.
"""

import numpy as np

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.analysis import approx_ratio
from repro.core import random_delay_priority_schedule
from repro.experiments import format_table
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_instance
from repro.util.rng import spawn_rngs

M = 64


def _delay_variants(inst, rng):
    k = inst.k
    depth = inst.depth()
    return {
        "none": np.zeros(k, dtype=np.int64),
        "uniform_k (paper)": rng.integers(0, k, size=k),
        "uniform_2k": rng.integers(0, 2 * k, size=k),
        "uniform_depth": rng.integers(0, max(depth, 1), size=k),
        "even_spread": (np.arange(k) * max(depth, k) // k).astype(np.int64),
    }


def _sweep():
    cfg = ExperimentConfig(mesh="long", target_cells=BENCH_CELLS, k=8)
    inst = get_instance(cfg)
    names = list(_delay_variants(inst, spawn_rngs(0, 1)[0]))
    rows = []
    for name in names:
        ratios = []
        for rng in spawn_rngs(1, len(BENCH_SEEDS) * 2):
            delays = _delay_variants(inst, rng)[name]
            s = random_delay_priority_schedule(inst, M, seed=rng, delays=delays)
            ratios.append(approx_ratio(s))
        rows.append(
            {
                "delays": name,
                "ratio_mean": float(np.mean(ratios)),
                "ratio_max": float(np.max(ratios)),
            }
        )
    return rows


def test_delay_distribution_ablation(benchmark, show):
    rows = run_once(benchmark, _sweep)
    show(
        format_table(
            rows,
            ["delays", "ratio_mean", "ratio_max"],
            title=f"E13 — delay-distribution ablation (long-like, k=8, m={M})",
        )
    )
    by = {r["delays"]: r["ratio_mean"] for r in rows}
    # The paper's distribution must not be materially worse than any
    # variant (within 15%) — i.e. uniform{0..k-1} is a sound choice.
    best = min(by.values())
    assert by["uniform_k (paper)"] <= 1.15 * best
