"""E2 — Fig. 2(b): communication costs C1 and C2 vs m.

Paper claims: (i) per-cell random assignment cuts ~(m-1)/m of all edges;
(ii) block partitioning slashes C1; (iii) C2 is far below C1 and barely
moves under blocking.
"""

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.experiments import paper, pick


def test_fig2b_comm(benchmark, show):
    rows, text = run_once(
        benchmark,
        paper.fig2b,
        target_cells=BENCH_CELLS,
        m_values=(2, 4, 8, 16, 32),
        block_sizes=(1, 16, 64),
        seeds=BENCH_SEEDS,
    )
    show(text)
    for m in (4, 8, 16, 32):
        cell = pick(rows, m=m, block_size=1)[0]
        block = pick(rows, m=m, block_size=64)[0]
        # (i) per-cell fraction concentrates near (m-1)/m.
        assert abs(cell["c1_fraction"] - (m - 1) / m) < 0.1
        # (ii) blocking cuts C1 by a large factor.
        assert block["c1"] < 0.6 * cell["c1"]
        # (iii) C2 well below C1 for the per-cell assignment.
        assert cell["c2"] < 0.5 * cell["c1"]
