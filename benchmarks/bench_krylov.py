"""E20 — sweep counts per solve: source iteration vs GMRES vs DSA.

Each GMRES matvec, each source iteration, and each DSA iteration costs
one full set of scheduled sweeps, so "sweeps to converge" is the
schedule-relevant currency.  Expected shape: SI sweep counts blow up
like 1/(1-c) as the scattering ratio c -> 1 while GMRES and DSA stay
nearly flat — which is why production codes pay for acceleration and why
sweep throughput (this paper's subject) dominates solver cost either
way.
"""

from benchmarks.conftest import run_once
from repro.core import random_delay_priority_schedule
from repro.experiments import format_table
from repro.mesh import Mesh
from repro.sweeps import build_instance
from repro.transport import (
    Quadrature,
    TransportProblem,
    si_vs_krylov_sweeps,
    solve_dsa_with_schedule,
)

SCATTERING_RATIOS = (0.3, 0.6, 0.9, 0.97)


def _sweep():
    mesh = Mesh.structured_grid((6, 6, 4))
    quad = Quadrature.sn(2)
    inst = build_instance(mesh, quad.directions)
    sched = random_delay_priority_schedule(inst, 8, seed=0)
    rows = []
    for c in SCATTERING_RATIOS:
        p = TransportProblem(
            mesh, quad, sigma_t=1.0, sigma_s=c, source=1.0, boundary="vacuum"
        )
        stats = si_vs_krylov_sweeps(p, sched, tol=1e-8)
        dsa = solve_dsa_with_schedule(p, sched, tol=1e-8)
        rows.append(
            {
                "scattering_ratio": c,
                "si_sweeps": stats["si_sweeps"],
                "krylov_sweeps": stats["krylov_sweeps"],
                "dsa_sweeps": dsa.iterations,
                "max_diff": stats["max_diff"],
            }
        )
    return rows


def test_krylov_vs_si(benchmark, show):
    rows = run_once(benchmark, _sweep)
    show(
        format_table(
            rows,
            ["scattering_ratio", "si_sweeps", "krylov_sweeps", "dsa_sweeps",
             "max_diff"],
            title="E20 — sweeps to converge: SI vs GMRES vs DSA (6x6x4, k=8)",
        )
    )
    for row in rows:
        assert row["max_diff"] < 1e-5
    # SI explodes with c; the accelerated solvers stay nearly flat and
    # win by >2x at high c.
    si = [r["si_sweeps"] for r in rows]
    assert si == sorted(si)
    assert rows[-1]["krylov_sweeps"] < rows[-1]["si_sweeps"] / 2
    assert rows[-1]["dsa_sweeps"] < rows[-1]["si_sweeps"] / 2
    dsa = [r["dsa_sweeps"] for r in rows]
    assert max(dsa) <= 2 * min(dsa)
