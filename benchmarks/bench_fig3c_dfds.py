"""E6 — Fig. 3(c): DFDS priorities ± delays vs random delays.

Paper claims: equal at small m; DFDS has the edge at high m with few
directions; at more directions they tie; delays help DFDS only at high
m and few directions.
"""

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.experiments import paper, pick


def test_fig3c_dfds(benchmark, show):
    m_values = (4, 8, 16, 32, 64)
    rows, text = run_once(
        benchmark,
        paper.fig3c,
        target_cells=BENCH_CELLS,
        m_values=m_values,
        k_values=(8, 24),
        seeds=BENCH_SEEDS,
    )
    show(text)
    # Small-m parity.
    base = pick(rows, m=4, k=24, algorithm="random_delay_priority")[0]["ratio"]
    dfds = pick(rows, m=4, k=24, algorithm="dfds")[0]["ratio"]
    assert abs(dfds - base) / base < 0.15
    # High m, few directions: DFDS at least matches random delays.
    hi = m_values[-1]
    dfds_hi = pick(rows, m=hi, k=8, algorithm="dfds")[0]["ratio"]
    rnd_hi = pick(rows, m=hi, k=8, algorithm="random_delay_priority")[0]["ratio"]
    assert dfds_hi <= 1.25 * rnd_hi
    # More directions: the gap closes (ratio of ratios nearer 1).
    dfds24 = pick(rows, m=hi, k=24, algorithm="dfds")[0]["ratio"]
    rnd24 = pick(rows, m=hi, k=24, algorithm="random_delay_priority")[0]["ratio"]
    assert abs(dfds24 - rnd24) / rnd24 <= abs(dfds_hi - rnd_hi) / rnd_hi + 0.15


def test_fig3c_percell_separation(benchmark, show):
    """Per-cell assignment exposes the DFDS edge at high m / few dirs
    that block-imbalance masks at reduced scale (see EXPERIMENTS.md)."""
    rows, text = run_once(
        benchmark,
        paper.fig3c,
        target_cells=BENCH_CELLS,
        m_values=(16, 64),
        k_values=(8,),
        seeds=BENCH_SEEDS,
        block_size=1,
    )
    show(text)
    dfds = pick(rows, m=64, k=8, algorithm="dfds")[0]["ratio"]
    rnd = pick(rows, m=64, k=8, algorithm="random_delay_priority")[0]["ratio"]
    assert dfds <= rnd + 1e-9
