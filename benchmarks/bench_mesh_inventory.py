"""E14 — mesh inventory: the paper's Section 5 mesh table, regenerated.

The paper describes its four meshes by cell count only; this bench
regenerates that inventory for the synthetic stand-ins and adds the
sweep-difficulty statistics that drive everything else (depth,
parallelism envelope), documenting what the substitution preserves.
"""

from benchmarks.conftest import BENCH_CELLS, run_once
from repro.analysis import instance_stats
from repro.experiments import format_table
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_instance

MESHES = ("tetonly", "well_logging", "long", "prismtet")


def _inventory():
    rows = []
    for mesh in MESHES:
        cfg = ExperimentConfig(mesh=mesh, target_cells=BENCH_CELLS, k=8)
        stats = instance_stats(get_instance(cfg))
        row = stats.as_dict()
        row["mesh"] = mesh
        rows.append(row)
    return rows


def test_mesh_inventory(benchmark, show):
    rows = run_once(benchmark, _inventory)
    show(
        format_table(
            rows,
            [
                "mesh",
                "n_cells",
                "k",
                "n_tasks",
                "total_edges",
                "depth",
                "max_parallelism",
                "intrinsic_parallelism",
            ],
            title="E14 — mesh inventory (paper's Section 5 mesh set, k=8)",
        )
    )
    by = {r["mesh"]: r for r in rows}
    # The substitution must preserve the paper's qualitative ordering:
    # 'long' is the deepest mesh relative to its size.
    for other in ("tetonly", "well_logging", "prismtet"):
        assert (
            by["long"]["depth"] / by["long"]["n_cells"]
            > by[other]["depth"] / by[other]["n_cells"]
        )
    # Every mesh has plenty of intrinsic parallelism (sweeps pipeline).
    for r in rows:
        assert r["intrinsic_parallelism"] > 4
