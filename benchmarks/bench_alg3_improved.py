"""E11 — Algorithm 3 (Improved Random Delay) vs Algorithms 1 and 2.

The paper proves Algorithm 3's stronger O(log m log log log m) expected
bound but does not evaluate it empirically; this bench fills that gap.
Expected shape: the layer-sequential variants (Alg 1, Alg 3) trail the
compacted list schedules; Alg 3's preprocessing narrows layers, which
pays off at high m where Alg 1's wide layers straggle.
"""

import numpy as np

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.analysis import approx_ratio
from repro.experiments import format_table
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_instance
from repro.heuristics import ALGORITHMS

ALGOS = (
    "random_delay",
    "improved_random_delay",
    "random_delay_priority",
    "improved_random_delay_priority",
)


def _sweep():
    cfg = ExperimentConfig(mesh="tetonly", target_cells=BENCH_CELLS, k=8)
    inst = get_instance(cfg)
    rows = []
    for m in (8, 32, 128):
        row = {"m": m}
        for name in ALGOS:
            ratios = [
                approx_ratio(ALGORITHMS[name](inst, m, seed=s)) for s in BENCH_SEEDS
            ]
            row[name] = float(np.mean(ratios))
        rows.append(row)
    return rows


def test_alg3_vs_others(benchmark, show):
    rows = run_once(benchmark, _sweep)
    show(
        format_table(
            rows,
            ["m"] + list(ALGOS),
            title="E11 — ratio to nk/m: Algorithms 1/3 and their compactions",
        )
    )
    for row in rows:
        # Compaction always helps, for both the plain and improved variant.
        assert row["random_delay_priority"] <= row["random_delay"]
        assert row["improved_random_delay_priority"] <= row["improved_random_delay"]
