"""E22 — topology-aware processor mapping (extension).

C1 treats every cross edge equally; on a torus interconnect distance
matters.  Compare hop-weighted communication under (i) the paper's
random block->processor assignment and (ii) RCB locality mapping of
blocks onto the torus — same blocks, same cut, different placement.
Also records the distributed edge-coloring round counts ([11]) for the
busiest step's message graph, closing the loop on the paper's
coordination remark.
"""

import numpy as np

from benchmarks.conftest import BENCH_CELLS, run_once
from repro.comm import (
    TorusTopology,
    distributed_edge_coloring,
    hop_weighted_c1,
    locality_mapping,
    step_message_graph,
)
from repro.comm.cost import interprocessor_edges, per_step_send_counts
from repro.core import block_assignment, random_delay_priority_schedule
from repro.experiments import format_table
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_blocks, get_instance
from repro.mesh.generators import make_mesh

TORI = ((4, 4), (8, 8))
BLOCK_SIZE = 8


def _sweep():
    cfg = ExperimentConfig(mesh="tetonly", target_cells=BENCH_CELLS, k=8)
    inst = get_instance(cfg)
    mesh = make_mesh("tetonly", target_cells=BENCH_CELLS, seed=0)
    blocks = get_blocks(cfg, BLOCK_SIZE)
    nb = int(blocks.max()) + 1
    centers = np.zeros((nb, 3))
    np.add.at(centers, blocks, mesh.centroids)
    centers /= np.maximum(np.bincount(blocks, minlength=nb), 1)[:, None]

    rows = []
    for dims in TORI:
        topo = TorusTopology(dims)
        random_assign = block_assignment(blocks, topo.m, seed=0)
        smart_assign = locality_mapping(centers, topo)[blocks]
        row = {
            "torus": f"{dims[0]}x{dims[1]}",
            "c1_edges": interprocessor_edges(inst, random_assign),
            "hops_random": hop_weighted_c1(inst, random_assign, topo),
            "hops_locality": hop_weighted_c1(inst, smart_assign, topo),
        }
        row["hop_saving"] = 1.0 - row["hops_locality"] / row["hops_random"]
        # Distributed coloring of the busiest step's message multigraph.
        sched = random_delay_priority_schedule(
            inst, topo.m, seed=0, assignment=smart_assign
        )
        busiest = int(np.argmax(per_step_send_counts(sched)))
        msgs = step_message_graph(sched, busiest)
        res = distributed_edge_coloring(msgs, topo.m, seed=0)
        row["coloring_rounds"] = res.rounds
        row["colors_used"] = int(res.colors.max()) + 1 if res.colors.size else 0
        rows.append(row)
    return rows


def test_topology_mapping(benchmark, show):
    rows = run_once(benchmark, _sweep)
    show(
        format_table(
            rows,
            ["torus", "c1_edges", "hops_random", "hops_locality",
             "hop_saving", "coloring_rounds", "colors_used"],
            title=f"E22 — torus locality mapping + distributed coloring (block {BLOCK_SIZE}, k=8)",
        )
    )
    for row in rows:
        # Locality mapping must cut hop-weighted traffic substantially.
        assert row["hop_saving"] > 0.15
        # The [11] protocol colors the busiest step in few rounds.
        assert row["coloring_rounds"] <= 30
