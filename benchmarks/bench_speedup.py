"""E17 — speedup and efficiency curves (the paper's linear-speedup claim).

"...this observation implies that we get linear speedup in performance
for up to 128 processors (and in some instance even more)."  Speedup =
serial work nk / makespan; efficiency = speedup / m.
"""

import numpy as np

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.analysis import efficiency, speedup
from repro.experiments import format_table
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_instance
from repro.heuristics import ALGORITHMS

M_VALUES = (2, 4, 8, 16, 32, 64, 128)


def _sweep():
    cfg = ExperimentConfig(mesh="tetonly", target_cells=BENCH_CELLS, k=24)
    inst = get_instance(cfg)
    rows = []
    for m in M_VALUES:
        sp, eff = [], []
        for seed in BENCH_SEEDS:
            s = ALGORITHMS["random_delay_priority"](inst, m, seed=seed)
            sp.append(speedup(s))
            eff.append(efficiency(s))
        rows.append(
            {
                "m": m,
                "speedup": float(np.mean(sp)),
                "efficiency": float(np.mean(eff)),
            }
        )
    return rows


def test_speedup_curve(benchmark, show):
    rows = run_once(benchmark, _sweep)
    show(
        format_table(
            rows,
            ["m", "speedup", "efficiency"],
            title="E17 — Algorithm 2 speedup/efficiency vs m (tetonly-like, k=24)",
        )
    )
    # Speedup grows monotonically with m across the sweep.
    sp = [r["speedup"] for r in rows]
    assert sp == sorted(sp)
    # "Linear speedup": efficiency at least 1/3 (ratio <= 3) wherever the
    # average load dominates the critical path.
    inst = get_instance(
        ExperimentConfig(mesh="tetonly", target_cells=BENCH_CELLS, k=24)
    )
    for row in rows:
        if inst.n_tasks / row["m"] >= inst.depth():
            assert row["efficiency"] >= 1 / 3
