"""E7 — headline observation: makespan <= 3 nk/m on every real mesh run.

Paper: "for all the real mesh instances we tried, with varying number of
directions, block size and processors, the length of our schedule was
always at most 3nk/m ... this observation implies that we get linear
speedup in performance for up to 128 processors."

At reduced mesh scale two effects the paper never hits can push past the
bound, so the assertion applies the claim in the paper's own regime:

* the critical path D can dominate nk/m at the largest m (its meshes
  have nk/m >> D everywhere it reports), and
* random block-to-processor assignment needs blocks >> m to balance
  (its smallest blocks/m ratio is ~1 only at the very top of one sweep).

Runs outside that regime are still printed for inspection.
"""

from benchmarks.conftest import BENCH_CELLS, BENCH_SEEDS, run_once
from repro.experiments import paper
from repro.experiments.runner import get_instance
from repro.experiments.configs import ExperimentConfig


def test_headline_3nkm(benchmark, show):
    rows, text = run_once(
        benchmark,
        paper.headline_bounds,
        target_cells=BENCH_CELLS,
        meshes=("tetonly", "well_logging", "long", "prismtet"),
        m_values=(4, 16, 64, 128),
        k_values=(8, 24),
        seeds=BENCH_SEEDS,
    )
    show(text)
    checked = 0
    for row in rows:
        cfg = ExperimentConfig(
            mesh=row["mesh"].split("_like")[0],
            target_cells=BENCH_CELLS,
            k=row["k"],
        )
        inst = get_instance(cfg)
        load_dominates = row["lower_bound"] >= inst.depth()
        blocks = inst.n_cells / row["block_size"]
        balanced_regime = row["block_size"] == 1 or blocks >= 4 * row["m"]
        if load_dominates and balanced_regime:
            checked += 1
            assert row["ratio_max"] <= 3.0, (
                f"{row['mesh']} k={row['k']} m={row['m']} "
                f"block={row['block_size']}: ratio {row['ratio_max']:.2f} > 3"
            )
    assert checked >= len(rows) // 3  # the regime filter must not be vacuous
