"""Shared benchmark configuration.

Every benchmark regenerates one paper table/figure at a reduced mesh
scale and prints the series table it produced (EXPERIMENTS.md records
these against the paper's claims).  Set ``REPRO_BENCH_CELLS`` to raise
the mesh size toward the paper's 31k–118k cells.
"""

from __future__ import annotations

import os

import pytest

#: Default mesh size for benchmarks; override with REPRO_BENCH_CELLS.
BENCH_CELLS = int(os.environ.get("REPRO_BENCH_CELLS", "2000"))
#: Seeds averaged per grid cell.
BENCH_SEEDS = (0, 1)


@pytest.fixture()
def show():
    """Print a result table through pytest's capture (visible with -s or
    in the terminal summary via the benchmark harness)."""

    def _show(text: str) -> None:
        print("\n" + text + "\n")

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Figure grids are deterministic given their seeds, so repeated rounds
    would only re-measure identical work; ``pedantic`` keeps bench time
    linear in the experiment count.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
