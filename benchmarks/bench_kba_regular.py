"""E12 — KBA on regular grids vs the randomized algorithms.

Related-work anchor: the paper notes KBA is essentially optimal on
regular meshes but has no unstructured analogue.  On a structured hex
grid KBA's columnar pipelining should match or beat the randomized
assignment; on unstructured meshes only the randomized algorithms apply.
"""

import numpy as np

from benchmarks.conftest import BENCH_SEEDS, run_once
from repro.analysis import approx_ratio
from repro.core import average_load_lb, random_delay_priority_schedule
from repro.experiments import format_table
from repro.heuristics import kba_schedule
from repro.mesh import Mesh
from repro.sweeps import build_instance, level_symmetric

GRID = (16, 16, 4)
PROC_GRIDS = ((2, 2), (4, 4), (8, 8))


def _sweep():
    mesh = Mesh.structured_grid(GRID)
    inst = build_instance(mesh, level_symmetric(2))
    rows = []
    for pg in PROC_GRIDS:
        m = pg[0] * pg[1]
        kba = kba_schedule(inst, mesh.cell_coords, pg)
        rnd = [
            approx_ratio(random_delay_priority_schedule(inst, m, seed=s))
            for s in BENCH_SEEDS
        ]
        rows.append(
            {
                "m": m,
                "kba_ratio": kba.makespan / average_load_lb(inst, m),
                "random_delay_priority_ratio": float(np.mean(rnd)),
            }
        )
    return rows


def test_kba_on_regular_grid(benchmark, show):
    rows = run_once(benchmark, _sweep)
    show(
        format_table(
            rows,
            ["m", "kba_ratio", "random_delay_priority_ratio"],
            title=f"E12 — KBA vs Algorithm 2 on a {GRID} hex grid (k=8)",
        )
    )
    for row in rows:
        # KBA is the structured-grid specialist: near-optimal throughout.
        assert row["kba_ratio"] <= 2.5
